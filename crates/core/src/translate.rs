//! Calculus ↔ algebra translations (Theorems 4 and 8 of the paper:
//! `safe RC(M) = RA(M)` for all four tame structures).
//!
//! **Algebra → calculus** ([`ra_to_calculus`]) is compositional and
//! total: every operator has a defining formula, and the operator set of
//! each algebra lands exactly in the matching calculus (`add^l`/`trim^l`
//! → `F_a` atoms, `↓` → length comparison, `σ_α` → `α` inlined).
//!
//! **Calculus → algebra** ([`adom_calculus_to_algebra`]) implements the
//! classical Codd-style translation for queries in **active-domain
//! normal form** (every quantifier `∃x ∈ adom` / `∀x ∈ adom`), which is
//! the normal form the collapse theorems (Theorem 1 for `S`, Theorem 2
//! for `S_len`, Theorem 6 for `S_left`/`S_reg`) reduce arbitrary queries
//! to. Structure atoms become `σ_α` selections over powers of the
//! active-domain expression; Boolean subformulas are threaded through
//! `R_ε`-flag relations (arity-1 `{(ε)}`/`{}`), which is exactly what the
//! paper's `R_ε` constant is for.
//!
//! Combined with the range-restriction bounds of
//! [`crate::safety::RangeRestricted`] (whose `γ` candidate sets are
//! themselves algebra-expressible — see [`gamma_candidates_expr`]), this
//! realizes the proof plan of Theorem 4: "the bounds can be computed by
//! relational algebra expressions".

use std::collections::BTreeSet;

use strcalc_alphabet::Sym;
use strcalc_logic::{Formula, Restrict, Term};
use strcalc_relational::{RaExpr, Schema};

use crate::query::{Calculus, CoreError};

// ---------------------------------------------------------------------
// Algebra → calculus
// ---------------------------------------------------------------------

/// Translates an algebra expression into a calculus formula whose free
/// variables are `c0..c(arity-1)` (in column order).
pub fn ra_to_calculus(e: &RaExpr, schema: &Schema) -> Result<Formula, CoreError> {
    let arity = e.arity(schema)?;
    let out: Vec<String> = (0..arity).map(|i| format!("c{i}")).collect();
    let mut ctr = 0usize;
    go_ra(e, schema, &out, &mut ctr)
}

fn fresh(ctr: &mut usize) -> String {
    *ctr += 1;
    format!("_d{ctr}")
}

fn go_ra(
    e: &RaExpr,
    schema: &Schema,
    out: &[String],
    ctr: &mut usize,
) -> Result<Formula, CoreError> {
    Ok(match e {
        RaExpr::Rel(r) => Formula::rel(
            r.clone(),
            out.iter().map(|v| Term::var(v.clone())).collect(),
        ),
        RaExpr::EpsilonRel => Formula::eq(Term::var(out[0].clone()), Term::epsilon()),
        RaExpr::Select(inner, alpha) => {
            let body = go_ra(inner, schema, out, ctr)?;
            // Rename α's column variables cN onto the actual out names.
            let mut renamed = alpha.clone();
            for (i, v) in out.iter().enumerate() {
                let from = format!("c{i}");
                if &from != v {
                    renamed = renamed.rename_free(&from, v);
                }
            }
            body.and(renamed)
        }
        RaExpr::Project(inner, cols) => {
            let m = inner.arity(schema)?;
            let inner_vars: Vec<String> = (0..m).map(|_| fresh(ctr)).collect();
            let mut f = go_ra(inner, schema, &inner_vars, ctr)?;
            for (i, &c) in cols.iter().enumerate() {
                f = f.and(Formula::eq(
                    Term::var(out[i].clone()),
                    Term::var(inner_vars[c].clone()),
                ));
            }
            for v in inner_vars.into_iter().rev() {
                f = Formula::exists(v, f);
            }
            f
        }
        RaExpr::Product(a, b) => {
            let na = a.arity(schema)?;
            let fa = go_ra(a, schema, &out[..na], ctr)?;
            let fb = go_ra(b, schema, &out[na..], ctr)?;
            fa.and(fb)
        }
        RaExpr::Union(a, b) => go_ra(a, schema, out, ctr)?.or(go_ra(b, schema, out, ctr)?),
        RaExpr::Diff(a, b) => go_ra(a, schema, out, ctr)?.and(go_ra(b, schema, out, ctr)?.not()),
        RaExpr::Prefix(inner, i) => {
            let m = out.len() - 1;
            let f = go_ra(inner, schema, &out[..m], ctr)?;
            f.and(Formula::prefix(
                Term::var(out[m].clone()),
                Term::var(out[*i].clone()),
            ))
        }
        RaExpr::AddRight(inner, i, a) => {
            let m = out.len() - 1;
            let f = go_ra(inner, schema, &out[..m], ctr)?;
            f.and(Formula::cover(
                Term::var(out[*i].clone()),
                Term::var(out[m].clone()),
            ))
            .and(Formula::last_sym(Term::var(out[m].clone()), *a))
        }
        RaExpr::AddLeft(inner, i, a) => {
            let m = out.len() - 1;
            let f = go_ra(inner, schema, &out[..m], ctr)?;
            f.and(Formula::prepends(
                Term::var(out[*i].clone()),
                Term::var(out[m].clone()),
                *a,
            ))
        }
        RaExpr::TrimLeft(inner, i, a) => {
            let m = out.len() - 1;
            let f = go_ra(inner, schema, &out[..m], ctr)?;
            let is_trim =
                Formula::prepends(Term::var(out[m].clone()), Term::var(out[*i].clone()), *a).or(
                    Formula::first_sym(Term::var(out[*i].clone()), *a)
                        .not()
                        .and(Formula::eq(Term::var(out[m].clone()), Term::epsilon())),
                );
            f.and(is_trim)
        }
        RaExpr::Down(inner, i) => {
            let m = out.len() - 1;
            let f = go_ra(inner, schema, &out[..m], ctr)?;
            f.and(Formula::shorter_eq(
                Term::var(out[m].clone()),
                Term::var(out[*i].clone()),
            ))
        }
        RaExpr::InsertAt(inner, i, j, a) => {
            let m = out.len() - 1;
            let f = go_ra(inner, schema, &out[..m], ctr)?;
            f.and(Formula::insert_after(
                Term::var(out[*i].clone()),
                Term::var(out[*j].clone()),
                Term::var(out[m].clone()),
                *a,
            ))
        }
    })
}

// ---------------------------------------------------------------------
// Calculus → algebra (active-domain normal form)
// ---------------------------------------------------------------------

/// The active-domain expression `A = ⋃_R ⋃_i π_i(R)` (arity 1).
pub fn adom_expr(schema: &Schema) -> Option<RaExpr> {
    let mut acc: Option<RaExpr> = None;
    for name in schema.names() {
        let arity = schema
            .arity(name)
            .expect("schema.names() only yields declared relations");
        for i in 0..arity {
            let piece = RaExpr::rel(name).project(vec![i]);
            acc = Some(match acc {
                None => piece,
                Some(prev) => prev.union(piece),
            });
        }
    }
    acc
}

/// A translated subformula: an expression whose columns (left to right)
/// carry the values of `cols` (sorted variable names). A closed
/// subformula (`cols` empty) is an arity-1 **flag**: `{(ε)}` for true,
/// `{}` for false.
#[derive(Clone)]
struct Tr {
    expr: RaExpr,
    cols: Vec<String>,
}

/// Translates an active-domain-normal-form query body into the algebra.
/// The result's columns follow `head` (which must list the free
/// variables). Boolean queries yield the arity-1 flag convention.
///
/// Unrestricted (or prefix-/length-restricted) quantifiers are rejected:
/// apply the collapse first (Theorems 1/2/6 justify that this loses no
/// expressive power for *generic* evaluation; our exact engine covers the
/// general case directly).
pub fn adom_calculus_to_algebra(
    formula: &Formula,
    head: &[String],
    schema: &Schema,
) -> Result<RaExpr, CoreError> {
    let adom = adom_expr(schema).ok_or_else(|| {
        CoreError::Unsupported("empty schema: no active-domain expression".into())
    })?;
    let tr = go_calc(formula, schema, &adom)?;
    // Check cols match head as sets.
    let free: BTreeSet<&String> = tr.cols.iter().collect();
    let head_set: BTreeSet<&String> = head.iter().collect();
    if free != head_set {
        return Err(CoreError::HeadMismatch {
            head: head.to_vec(),
            free: tr.cols.clone(),
        });
    }
    if head.is_empty() {
        return Ok(flagged(tr.expr));
    }
    // Permute columns to head order.
    let perm: Vec<usize> = head
        .iter()
        .map(|h| {
            tr.cols
                .iter()
                .position(|c| c == h)
                .expect("head and cols were checked equal as sets above")
        })
        .collect();
    Ok(tr.expr.project(perm))
}

/// Normalizes a (possibly multi-column) expression to an arity-1 flag:
/// `{(ε)}` iff nonempty.
fn flagged(e: RaExpr) -> RaExpr {
    let arity_hint = 0; // position of R_ε column = e's arity — computed at eval
    let _ = arity_hint;
    // π_{last}(e × R_ε): the ε column is the last one.
    // We don't know e's arity statically here without a schema, so use a
    // trick: R_ε × e, project column 0.
    RaExpr::EpsilonRel.product(e).project(vec![0])
}

fn go_calc(f: &Formula, schema: &Schema, adom: &RaExpr) -> Result<Tr, CoreError> {
    match f {
        Formula::True => Ok(Tr {
            expr: RaExpr::EpsilonRel,
            cols: vec![],
        }),
        Formula::False => Ok(Tr {
            expr: RaExpr::EpsilonRel.diff(RaExpr::EpsilonRel),
            cols: vec![],
        }),
        Formula::Atom(a) => atom_to_tr(a, schema, adom),
        Formula::And(x, y) => {
            let a = go_calc(x, schema, adom)?;
            let b = go_calc(y, schema, adom)?;
            Ok(join(a, b))
        }
        Formula::Or(x, y) => {
            let a = go_calc(x, schema, adom)?;
            let b = go_calc(y, schema, adom)?;
            let (a, b) = align(a, b, adom);
            Ok(Tr {
                expr: a.expr.union(b.expr),
                cols: a.cols,
            })
        }
        Formula::Not(x) => {
            let a = go_calc(x, schema, adom)?;
            // Complement against adom^n (flag complement for n = 0).
            if a.cols.is_empty() {
                Ok(Tr {
                    expr: RaExpr::EpsilonRel.diff(a.expr),
                    cols: vec![],
                })
            } else {
                let mut dom = adom.clone();
                for _ in 1..a.cols.len() {
                    dom = dom.product(adom.clone());
                }
                Ok(Tr {
                    expr: dom.diff(a.expr),
                    cols: a.cols,
                })
            }
        }
        Formula::Implies(x, y) => {
            let rewritten = x.clone().not().or((**y).clone());
            go_calc(&rewritten, schema, adom)
        }
        Formula::Iff(x, y) => {
            let pos = (**x).clone().and((**y).clone());
            let neg = x.clone().not().and(y.clone().not());
            go_calc(&pos.or(neg), schema, adom)
        }
        Formula::ExistsR(Restrict::Active, v, body) => {
            let b = go_calc(body, schema, adom)?;
            match b.cols.iter().position(|c| c == v) {
                Some(idx) => {
                    let keep: Vec<usize> = (0..b.cols.len()).filter(|&i| i != idx).collect();
                    let cols: Vec<String> = keep.iter().map(|&i| b.cols[i].clone()).collect();
                    let expr = if keep.is_empty() {
                        flagged(b.expr)
                    } else {
                        b.expr.project(keep)
                    };
                    Ok(Tr { expr, cols })
                }
                None => {
                    // v unused: ∃v∈adom φ ⟺ (adom ≠ ∅) ∧ φ.
                    let flag = Tr {
                        expr: flagged(adom.clone()),
                        cols: vec![],
                    };
                    Ok(join(flag, b))
                }
            }
        }
        Formula::ForallR(Restrict::Active, v, body) => {
            // ∀v∈adom φ ⟺ ¬∃v∈adom ¬φ.
            let rewritten =
                Formula::exists_r(Restrict::Active, v.clone(), body.clone().not()).not();
            go_calc(&rewritten, schema, adom)
        }
        Formula::Exists(..) | Formula::Forall(..) | Formula::ExistsR(..) | Formula::ForallR(..) => {
            Err(CoreError::Unsupported(
                "calculus→algebra translation requires active-domain normal form \
             (quantifiers ∃x∈adom / ∀x∈adom); apply the collapse first"
                    .into(),
            ))
        }
    }
}

/// Natural join of two translated subformulas on their shared columns.
fn join(a: Tr, b: Tr) -> Tr {
    // Result columns: sorted union.
    let mut cols: Vec<String> = a.cols.clone();
    for c in &b.cols {
        if !cols.contains(c) {
            cols.push(c.clone());
        }
    }
    cols.sort();

    let na = a.cols.len().max(1);
    let product = a.expr.clone().product(b.expr.clone());
    // Equalities for shared variables.
    let mut alpha: Option<Formula> = None;
    for (j, c) in b.cols.iter().enumerate() {
        if let Some(i) = a.cols.iter().position(|x| x == c) {
            let eq = Formula::eq(RaExpr::col(i), RaExpr::col(na + j));
            alpha = Some(match alpha {
                None => eq,
                Some(prev) => prev.and(eq),
            });
        }
    }
    let selected = match alpha {
        Some(alpha) => product.select(alpha),
        None => product,
    };
    // Projection: for each result column, its position in the product.
    let pos_of = |c: &String| -> usize {
        if let Some(i) = a.cols.iter().position(|x| x == c) {
            i
        } else {
            let j = b
                .cols
                .iter()
                .position(|x| x == c)
                .expect("cols is the union of a.cols and b.cols");
            na + j
        }
    };
    if cols.is_empty() {
        // Both nullary: flags at positions 0 and max(na,1)… the product of
        // two flags is arity 2; project column 0.
        return Tr {
            expr: selected.project(vec![0]),
            cols,
        };
    }
    let keep: Vec<usize> = cols.iter().map(pos_of).collect();
    Tr {
        expr: selected.project(keep),
        cols,
    }
}

/// Aligns two translated subformulas onto the same (sorted-union) column
/// list, padding missing variables with the active-domain expression.
fn align(a: Tr, b: Tr, adom: &RaExpr) -> (Tr, Tr) {
    let mut cols: Vec<String> = a.cols.clone();
    for c in &b.cols {
        if !cols.contains(c) {
            cols.push(c.clone());
        }
    }
    cols.sort();
    (pad(a, &cols, adom), pad(b, &cols, adom))
}

fn pad(t: Tr, cols: &[String], adom: &RaExpr) -> Tr {
    if t.cols == cols {
        return t;
    }
    let base_arity = t.cols.len().max(1);
    let missing: Vec<&String> = cols.iter().filter(|c| !t.cols.contains(c)).collect();
    let mut expr = t.expr;
    for _ in &missing {
        expr = expr.product(adom.clone());
    }
    // Position of each target column.
    let keep: Vec<usize> = cols
        .iter()
        .map(|c| {
            if let Some(i) = t.cols.iter().position(|x| x == c) {
                i
            } else {
                let j = missing
                    .iter()
                    .position(|m| *m == c)
                    .expect("a column absent from t.cols is in missing by construction");
                base_arity + j
            }
        })
        .collect();
    Tr {
        expr: expr.project(keep),
        cols: cols.to_vec(),
    }
}

/// Translates one atom.
fn atom_to_tr(a: &strcalc_logic::Atom, schema: &Schema, adom: &RaExpr) -> Result<Tr, CoreError> {
    use strcalc_logic::Atom;
    match a {
        Atom::Rel(r, terms) => {
            let arity = schema
                .arity(r)
                .ok_or_else(|| CoreError::Unsupported(format!("unknown relation {r}")))?;
            if arity != terms.len() {
                return Err(CoreError::Unsupported(format!("arity mismatch on {r}")));
            }
            // Select constants and duplicate variables; project to one
            // column per distinct variable, sorted.
            let mut alpha: Option<Formula> = None;
            let add = |f: Formula, alpha: &mut Option<Formula>| {
                *alpha = Some(match alpha.take() {
                    None => f,
                    Some(prev) => prev.and(f),
                });
            };
            let mut seen: Vec<(String, usize)> = Vec::new();
            for (i, t) in terms.iter().enumerate() {
                match t {
                    Term::Const(c) => add(
                        Formula::eq(RaExpr::col(i), Term::konst(c.clone())),
                        &mut alpha,
                    ),
                    Term::Var(v) => match seen.iter().find(|(name, _)| name == v) {
                        Some(&(_, first)) => {
                            add(Formula::eq(RaExpr::col(first), RaExpr::col(i)), &mut alpha)
                        }
                        None => seen.push((v.clone(), i)),
                    },
                    _ => {
                        return Err(CoreError::Unsupported(
                            "function terms must be lowered before translation".into(),
                        ))
                    }
                }
            }
            let mut expr = RaExpr::rel(r);
            if let Some(alpha) = alpha {
                expr = expr.select(alpha);
            }
            seen.sort();
            if seen.is_empty() {
                return Ok(Tr {
                    expr: flagged(expr),
                    cols: vec![],
                });
            }
            let keep: Vec<usize> = seen.iter().map(|&(_, i)| i).collect();
            Ok(Tr {
                expr: expr.project(keep),
                cols: seen.into_iter().map(|(v, _)| v).collect(),
            })
        }
        other => {
            // A pure structure atom over distinct variables (sorted):
            // σ_α(adom^m), with α renaming variables to columns.
            let mut vars: BTreeSet<String> = BTreeSet::new();
            for t in other.terms() {
                if let Term::Var(v) = t {
                    vars.insert(v.clone());
                } else if !t.is_flat() {
                    return Err(CoreError::Unsupported(
                        "function terms must be lowered before translation".into(),
                    ));
                }
            }
            let cols: Vec<String> = vars.into_iter().collect();
            let alpha = Formula::Atom(other.map_terms(|t| match t {
                Term::Var(v) => {
                    let i = cols
                        .iter()
                        .position(|c| c == v)
                        .expect("cols collects every variable of this atom");
                    RaExpr::col(i)
                }
                t => t.clone(),
            }));
            if cols.is_empty() {
                // Ground structure atom: flag via σ over R_ε.
                return Ok(Tr {
                    expr: RaExpr::EpsilonRel.select(alpha),
                    cols,
                });
            }
            let mut dom = adom.clone();
            for _ in 1..cols.len() {
                dom = dom.product(adom.clone());
            }
            Ok(Tr {
                expr: dom.select(alpha),
                cols,
            })
        }
    }
}

/// The `γ_k` candidate set as an **algebra expression** (arity 1) —
/// the missing piece of Theorem 4's proof plan, "the bounds can be
/// computed by relational algebra expressions":
///
/// * `S`/`S_reg`: prefixes of `adom`-strings extended by ≤ `k` symbols:
///   `k` rounds of `add^r` over all letters, then `prefix`;
/// * `S_left`: additionally `k` rounds of `add^l`;
/// * `S_len`: `↓` applied to `adom` strings extended by `k` symbols.
pub fn gamma_candidates_expr(
    calculus: Calculus,
    schema: &Schema,
    alphabet_size: Sym,
    k: usize,
) -> Result<RaExpr, CoreError> {
    let adom = adom_expr(schema).ok_or_else(|| {
        CoreError::Unsupported("empty schema: no active-domain expression".into())
    })?;
    // Extend right by ≤ k symbols: C_{j+1} = C_j ∪ ⋃_a π_1(add^r_a(C_j)).
    let extend_right = |mut c: RaExpr, rounds: usize| -> RaExpr {
        for _ in 0..rounds {
            let mut next = c.clone();
            for a in 0..alphabet_size {
                next = next.union(c.clone().add_right(0, a).project(vec![1]));
            }
            c = next;
        }
        c
    };
    let extend_left = |mut c: RaExpr, rounds: usize| -> RaExpr {
        for _ in 0..rounds {
            let mut next = c.clone();
            for a in 0..alphabet_size {
                next = next.union(c.clone().add_left(0, a).project(vec![1]));
            }
            c = next;
        }
        c
    };
    let prefixes = |c: RaExpr| -> RaExpr { c.prefix(0).project(vec![1]) };
    Ok(match calculus {
        Calculus::S | Calculus::SReg => prefixes(extend_right(adom, k)),
        Calculus::SLeft => prefixes(extend_left(extend_right(adom, k), k)),
        Calculus::SLen => extend_right(adom, k).down(0).project(vec![1]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AutomataEngine;
    use crate::query::Query;
    use strcalc_alphabet::{Alphabet, Str};
    use strcalc_relational::{Database, RaEvaluator};

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    fn s(t: &str) -> Str {
        ab().parse(t).unwrap()
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.insert("R", vec![s("ab"), s("b")]).unwrap();
        db.insert("R", vec![s("a"), s("ab")]).unwrap();
        db.insert("U", vec![s("ab")]).unwrap();
        db.insert("U", vec![s("ba")]).unwrap();
        db
    }

    /// Round trip: evaluate an algebra expression directly, and evaluate
    /// its calculus translation with the exact engine; compare.
    fn check_ra_roundtrip(e: &RaExpr) {
        let database = db();
        let schema = database.schema();
        let direct = RaEvaluator::new(ab()).eval(e, &database).unwrap();

        let formula = ra_to_calculus(e, &schema).unwrap();
        let head: Vec<String> = (0..e.arity(&schema).unwrap())
            .map(|i| format!("c{i}"))
            .collect();
        let q = Query::infer(ab(), head, formula).unwrap();
        let via_calculus = AutomataEngine::new()
            .eval(&q, &database)
            .unwrap()
            .expect_finite();
        assert_eq!(direct, via_calculus, "round trip failed for {e}");
    }

    #[test]
    fn ra_to_calculus_round_trips() {
        let cases = vec![
            RaExpr::rel("U"),
            RaExpr::EpsilonRel,
            RaExpr::rel("R").project(vec![1, 0]),
            RaExpr::rel("U").product(RaExpr::rel("U")),
            RaExpr::rel("U").union(RaExpr::rel("R").project(vec![0])),
            RaExpr::rel("U").diff(RaExpr::rel("R").project(vec![1])),
            RaExpr::rel("U").select(Formula::last_sym(RaExpr::col(0), 1)),
            RaExpr::rel("U").prefix(0),
            RaExpr::rel("U").add_right(0, 0),
            RaExpr::rel("U").add_left(0, 1),
            RaExpr::rel("U").trim_left(0, 0),
            RaExpr::rel("U").down(0),
            RaExpr::rel("R")
                .select(Formula::prefix(RaExpr::col(0), RaExpr::col(1)))
                .project(vec![0])
                .prefix(0),
        ];
        for e in &cases {
            check_ra_roundtrip(e);
        }
    }

    /// Round trip in the other direction: an active-domain-normal-form
    /// formula translated to the algebra must agree with the exact
    /// engine.
    fn check_calc_roundtrip(head: &[&str], src: &str) {
        let database = db();
        let schema = database.schema();
        let head: Vec<String> = head.iter().map(|h| h.to_string()).collect();
        let q = Query::parse(Calculus::SLen, ab(), head.clone(), src).unwrap();
        let exact = AutomataEngine::new()
            .eval(&q, &database)
            .unwrap()
            .expect_finite();

        let expr = adom_calculus_to_algebra(&q.formula, &head, &schema).unwrap();
        let via_algebra = RaEvaluator::new(ab()).eval(&expr, &database).unwrap();
        if head.is_empty() {
            // Flag convention.
            let truth = !via_algebra.is_empty();
            let exact_truth = AutomataEngine::new().eval_bool(&q, &database).unwrap();
            assert_eq!(truth, exact_truth, "{src}");
        } else {
            assert_eq!(exact, via_algebra, "{src}");
        }
    }

    #[test]
    fn adom_calculus_to_algebra_round_trips() {
        // Queries with adom-guarded heads and active-domain quantifiers.
        check_calc_roundtrip(&["x"], "U(x)");
        check_calc_roundtrip(&["x"], "U(x) & last(x, 'b')");
        check_calc_roundtrip(&["x"], "U(x) & !existsA y. (R(x, y))");
        check_calc_roundtrip(&["x", "y"], "R(x, y) & x <= y");
        check_calc_roundtrip(&["x"], "existsA y. (R(y, x) & lex(y, x))");
        check_calc_roundtrip(&["x"], "U(x) & forallA y. (U(y) -> lex(x, y))");
        check_calc_roundtrip(&["x"], "U(x) | existsA y. R(y, x)");
        check_calc_roundtrip(&[], "existsA x. (U(x) & last(x,'a'))");
        check_calc_roundtrip(&[], "existsA x. existsA y. (R(x,y) & el(x,y))");
        check_calc_roundtrip(&["x"], "U(x) & x = \"ab\"");
        check_calc_roundtrip(&["x"], "R(x, x)"); // duplicate-variable atom
    }

    #[test]
    fn unrestricted_quantifiers_are_rejected() {
        let database = db();
        let schema = database.schema();
        let f = strcalc_logic::parse_formula(&ab(), "exists y. R(x, y)").unwrap();
        assert!(matches!(
            adom_calculus_to_algebra(&f, &["x".to_string()], &schema),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn gamma_candidates_match_automaton() {
        use crate::safety::RangeRestricted;
        let database = db();
        let schema = database.schema();
        for calc in [Calculus::S, Calculus::SLeft, Calculus::SLen] {
            let k = 1usize;
            let expr = gamma_candidates_expr(calc, &schema, 2, k).unwrap();
            let rel = RaEvaluator::new(ab()).eval(&expr, &database).unwrap();
            // Compare with the automaton-built γ of RangeRestricted.
            let q = Query::parse(calc, ab(), vec!["x".into()], "U(x)").unwrap();
            let rr = RangeRestricted { query: q, k };
            let gamma = rr.gamma_automaton(&database, 0);
            for w in ab().strings_up_to(4) {
                assert_eq!(
                    rel.contains(std::slice::from_ref(&w)),
                    gamma.accepts(&[&w]),
                    "{calc:?} γ disagreement on {w}"
                );
            }
        }
    }
}
