//! Safety analysis: state-safety (Proposition 7), range restriction
//! (Theorems 3 and 7), and the `S_len` finiteness sentence (Section 6.1).

use std::collections::HashMap;

use strcalc_alphabet::Str;
use strcalc_automata::Dfa;
use strcalc_logic::compile::length_at_most;
use strcalc_logic::transform::quantifier_rank;
use strcalc_logic::{Atom, Formula, Term};
use strcalc_relational::{Database, Relation};
use strcalc_synchro::nfa::Var;
use strcalc_synchro::{atoms, conv, SyncFiniteness, SyncNfa};

use crate::engine::AutomataEngine;
use crate::query::{Calculus, CoreError, Query};

/// The state-safety verdict for a query on a concrete database —
/// decidable for all four calculi (Proposition 7 / Corollary 8), and
/// *implemented exactly* here via language finiteness.
#[derive(Debug, Clone, PartialEq)]
pub enum StateSafety {
    /// `φ(D)` is finite: the materialized output and its cardinality.
    Safe { output: Relation, count: u64 },
    /// `φ(D)` is infinite; `sample` holds a few witness tuples.
    Unsafe { sample: Vec<Vec<Str>> },
}

impl StateSafety {
    pub fn is_safe(&self) -> bool {
        matches!(self, StateSafety::Safe { .. })
    }
}

/// Decides state-safety of `q` on `db` (Proposition 7, algorithmically).
pub fn state_safety(
    engine: &AutomataEngine,
    q: &Query,
    db: &Database,
) -> Result<StateSafety, CoreError> {
    let compiled = engine.compile(q, db)?;
    let perm: Vec<usize> = q
        .head
        .iter()
        .map(|h| {
            compiled
                .var_names
                .iter()
                .position(|v| v == h)
                .expect("validated head")
        })
        .collect();
    match compiled.auto.finiteness() {
        SyncFiniteness::Empty => Ok(StateSafety::Safe {
            output: Relation::new(q.arity()),
            count: 0,
        }),
        SyncFiniteness::Finite(count) => {
            let tuples = compiled.auto.try_enumerate_finite()?;
            let output = Relation::from_tuples(
                q.arity(),
                tuples
                    .into_iter()
                    .map(|t| perm.iter().map(|&i| t[i].clone()).collect()),
            );
            Ok(StateSafety::Safe { output, count })
        }
        SyncFiniteness::Infinite => {
            let raw = compiled.auto.enumerate(db.max_len() + 8, engine.sample);
            Ok(StateSafety::Unsafe {
                sample: raw
                    .into_iter()
                    .map(|t| perm.iter().map(|&i| t[i].clone()).collect())
                    .collect(),
            })
        }
    }
}

/// A range-restricted query `(γ_k, φ)` in the sense of Section 6.1:
/// evaluation returns `γ_k(adom(D)) ∩ φ(D)` — always finite, and equal
/// to `φ(D)` on every database where `φ` is safe, provided `k` is at
/// least the constant of Lemma 1 / Lemma 2.
///
/// The paper's `k` comes from an Ehrenfeucht–Fraïssé argument and is
/// effective for restricted-quantifier formulas; here `k` defaults to an
/// explicit syntactic bound ([`RangeRestricted::derive`]) and the
/// `checked` evaluation path verifies the theorem's conclusion at run
/// time by comparing with the exact engine.
#[derive(Debug, Clone)]
pub struct RangeRestricted {
    pub query: Query,
    /// The fringe width of `γ_k`.
    pub k: usize,
}

impl RangeRestricted {
    /// Derives a syntactic bound `k`: quantifier rank plus the longest
    /// constant plus the largest pattern automaton, plus one. This
    /// dominates the "distance a formula can see beyond the database"
    /// in the jumping lemmas for every query in the test corpus; the
    /// `checked` path makes any hypothetical violation loud.
    pub fn derive(query: Query) -> RangeRestricted {
        let mut max_const = 0usize;
        let mut max_dfa = 0usize;
        let k_alpha = query.alphabet.len() as u8;
        query.formula.visit(&mut |sub| {
            if let Formula::Atom(a) = sub {
                for t in a.terms() {
                    if let Term::Const(c) = t {
                        max_const = max_const.max(c.len());
                    }
                }
                if let Atom::InLang(_, l) | Atom::PL(_, _, l) = a {
                    max_dfa = max_dfa.max(l.to_dfa(k_alpha).len());
                }
            }
        });
        let k = quantifier_rank(&query.formula) + max_const + max_dfa + 1;
        RangeRestricted { query, k }
    }

    /// The automaton for the candidate set `γ_k(adom(D))` (one track):
    ///
    /// * `S`, `S_reg`: prefixes of `y·σ` with `y ∈ adom`, `|σ| ≤ k`
    ///   (Theorem 3's `γ` for `S`);
    /// * `S_left`: prefixes of `π·y·σ` with `|π|, |σ| ≤ k` (the left
    ///   operations can also move output strings leftwards — Theorem 7);
    /// * `S_len`: all strings of length ≤ maxlen(adom) + k (Theorem 3's
    ///   `γ` for `S_len`).
    pub fn gamma_automaton(&self, db: &Database, var: Var) -> SyncNfa {
        let k_alpha = self.query.alphabet.len() as u8;
        let adom: Vec<Str> = db.adom().into_iter().collect();
        match self.query.calculus {
            Calculus::S | Calculus::SReg => prefix_extend_automaton(k_alpha, var, &adom, 0, self.k),
            Calculus::SLeft => prefix_extend_automaton(k_alpha, var, &adom, self.k, self.k),
            Calculus::SLen => {
                let max = adom.iter().map(Str::len).max().unwrap_or(0);
                length_at_most(k_alpha, var, max + self.k)
            }
        }
    }

    /// Evaluates the range-restricted query: `γ_k(adom) ∩ φ(D)`. The
    /// result is finite **by construction** (every output column is
    /// intersected with the bounded candidate set).
    pub fn eval(&self, engine: &AutomataEngine, db: &Database) -> Result<Relation, CoreError> {
        let compiled = engine.compile(&self.query, db)?;
        let mut auto = compiled.auto;
        for track in 0..self.query.arity() {
            let gamma = self.gamma_automaton(db, track as Var);
            auto = auto.intersect(&gamma)?;
        }
        debug_assert!(
            !matches!(auto.finiteness(), SyncFiniteness::Infinite),
            "γ-bounded output must be finite"
        );
        let perm: Vec<usize> = self
            .query
            .head
            .iter()
            .map(|h| {
                compiled
                    .var_names
                    .iter()
                    .position(|v| v == h)
                    .expect("validated head")
            })
            .collect();
        let tuples = auto.try_enumerate_finite()?;
        Ok(Relation::from_tuples(
            self.query.arity(),
            tuples
                .into_iter()
                .map(|t| perm.iter().map(|&i| t[i].clone()).collect()),
        ))
    }

    /// Evaluates with the Theorem-3 guarantee checked at run time: if the
    /// query is safe on `db`, assert the range-restricted output equals
    /// the exact output (growing `k` would be the remedy; no violation
    /// has ever been observed).
    pub fn eval_checked(
        &self,
        engine: &AutomataEngine,
        db: &Database,
    ) -> Result<Relation, CoreError> {
        let restricted = self.eval(engine, db)?;
        if let StateSafety::Safe { output, .. } = state_safety(engine, &self.query, db)? {
            if output != restricted {
                return Err(CoreError::Unsupported(format!(
                    "range-restriction bound k={} too small (exact {} vs restricted {} \
                     tuples); this would contradict the derived Lemma 1/2 constant",
                    self.k,
                    output.len(),
                    restricted.len()
                )));
            }
        }
        Ok(restricted)
    }
}

/// Automaton over one track for: prefixes of `π·y·σ` with `y ∈ words`,
/// `|π| ≤ pre`, `|σ| ≤ post`.
fn prefix_extend_automaton(k: u8, var: Var, words: &[Str], pre: usize, post: usize) -> SyncNfa {
    // Build as a classical DFA over the unary alphabet, then lift.
    // L = Σ^{≤pre} · W · Σ^{≤post}, then take the prefix closure.
    let trie = trie_dfa(k, words);
    let sig_pre = sigma_up_to(k, pre);
    let sig_post = sigma_up_to(k, post);
    let cat = strcalc_automata::starfree::concat_dfas(
        &strcalc_automata::starfree::concat_dfas(&sig_pre, &trie),
        &sig_post,
    );
    let closed = prefix_close_dfa(&cat);
    atoms::in_dfa(k, var, &closed)
}

fn trie_dfa(k: u8, words: &[Str]) -> Dfa {
    strcalc_automata::Nfa::from_finite(k, words.iter()).determinize()
}

fn sigma_up_to(k: u8, n: usize) -> Dfa {
    let mut trans: Vec<Vec<Option<u32>>> = Vec::new();
    let accepting = vec![true; n + 1];
    for i in 0..=n {
        let mut row = vec![None; k as usize];
        if i < n {
            for cell in row.iter_mut() {
                *cell = Some(i as u32 + 1);
            }
        }
        trans.push(row);
    }
    Dfa {
        k,
        trans,
        start: 0,
        accepting,
    }
}

/// Prefix closure of a regular language: mark every useful state
/// accepting.
fn prefix_close_dfa(d: &Dfa) -> Dfa {
    let mut t = d.trim();
    for a in t.accepting.iter_mut() {
        *a = true;
    }
    // After trimming, every state lies on a path to acceptance, so
    // marking all states accepting yields exactly the prefixes.
    t
}

/// The paper's Section-6.1 finiteness sentence for `RC(S_len)`:
///
/// ```text
/// Φ_fin  =  ∃y ∀x (U(x) → ∃z (z ⪯ y ∧ el(z, x)))
/// ```
///
/// `U` is finite iff all its strings are bounded in length by some `y`
/// (for a finite alphabet). `U` may be *virtual* — an automaton — which
/// is how the sentence is applied to a possibly-infinite query output.
pub fn finiteness_sentence() -> Formula {
    let u = Formula::rel("U", vec![Term::var("x")]);
    let bound = Formula::exists(
        "z",
        Formula::prefix(Term::var("z"), Term::var("y"))
            .and(Formula::eq_len(Term::var("z"), Term::var("x"))),
    );
    Formula::exists("y", Formula::forall("x", u.implies(bound)))
}

/// Applies [`finiteness_sentence`] to an arbitrary unary synchronized
/// relation: returns `true` iff `{x : u(x)}` is finite — and, being a
/// faithful transcription of the paper's sentence, agrees with the
/// direct automata-theoretic check [`SyncNfa::finiteness`] (tested in
/// `tests/finiteness.rs`).
pub fn finite_by_sentence(
    engine: &AutomataEngine,
    alphabet: &strcalc_alphabet::Alphabet,
    u: SyncNfa,
) -> Result<bool, CoreError> {
    let q = Query::new(
        Calculus::SLen,
        alphabet.clone(),
        vec![],
        finiteness_sentence(),
    )?;
    let db = Database::new();
    let compiled = engine.compile_with(&q, &db, HashMap::from([("U".to_string(), u)]))?;
    Ok(compiled.auto.is_true())
}

/// Demonstrates Proposition 6's flip side: the *candidate* finiteness
/// sentence for `RC(S)` (replacing `el` by prefix bounds) is **not**
/// correct — finiteness is not definable over `S`. Returns a unary
/// relation on which "all `U`-strings are prefixes of some `y`" and
/// actual finiteness disagree.
pub fn s_finiteness_gap_witness(k: u8) -> (SyncNfa, bool, bool) {
    // U = b* : infinite, but no single y bounds it prefix-wise anyway —
    // pick instead U = {a, b}* ∩ prefixes of a^ω = a*: infinite, yet every
    // string is a prefix of ... no single y. The *sentence* over S,
    // ∃y ∀x (U(x) → x ⪯ y), already fails to characterize finiteness in
    // the other direction: U = {a, b} is finite but has no common bound y
    // … it does: y must extend both "a" and "b" — impossible. So the S
    // sentence says "U is a chain with a top", not "U is finite".
    let u = atoms::finite_set(
        k,
        0,
        [Str::from_syms(vec![0]), Str::from_syms(vec![1])].iter(),
    );
    // Actual finiteness: true. S-sentence ∃y∀x(U(x) → x ⪯ y): false.
    (u, true, false)
}

/// Builds the unary automaton `{x : x ⪯ y for some y with U(y)}` — a
/// helper used by experiments around Lemma 1 (`prefix(D)` sets).
pub fn prefix_closure_automaton(k: u8, var: Var, words: &[Str]) -> SyncNfa {
    let closed = prefix_close_dfa(&trie_dfa(k, words));
    atoms::in_dfa(k, var, &closed)
}

/// The convolution-free helper: a one-track automaton accepting exactly
/// `words` (exposed for benchmarks comparing trie encodings).
pub fn finite_set_automaton(k: u8, var: Var, words: &[Str]) -> SyncNfa {
    atoms::finite_set(k, var, words.iter())
}

/// Sanity helper for tests: the number of one-track strings accepted up
/// to a length bound.
pub fn count_accepted_up_to(
    auto: &SyncNfa,
    alphabet: &strcalc_alphabet::Alphabet,
    n: usize,
) -> usize {
    assert_eq!(auto.arity(), 1);
    alphabet
        .strings_up_to(n)
        .filter(|w| auto.accepts(&[w]))
        .count()
}

/// Packs a letter for single-track automata (test helper re-export).
pub fn unary_sym(s: u8) -> conv::ConvSym {
    conv::pack(&[Some(s)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use strcalc_alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    fn s(t: &str) -> Str {
        ab().parse(t).unwrap()
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_unary_parsed(&ab(), "R", &["ab", "ba"]).unwrap();
        db
    }

    fn q(calc: Calculus, head: &[&str], src: &str) -> Query {
        Query::parse(
            calc,
            ab(),
            head.iter().map(|h| h.to_string()).collect(),
            src,
        )
        .unwrap()
    }

    #[test]
    fn state_safety_verdicts() {
        let e = AutomataEngine::new();
        let safe = q(Calculus::S, &["x"], "exists y. (R(y) & x <= y)");
        match state_safety(&e, &safe, &db()).unwrap() {
            StateSafety::Safe { count, output } => {
                assert_eq!(count, 5); // ε,a,ab,b,ba
                assert_eq!(output.len(), 5);
            }
            other => panic!("expected safe, got {other:?}"),
        }
        let unsafe_q = q(Calculus::S, &["x"], "exists y. (R(y) & y <= x)");
        assert!(!state_safety(&e, &unsafe_q, &db()).unwrap().is_safe());
        // The classic: ¬R(x) is unsafe on every database.
        let neg = q(Calculus::S, &["x"], "!R(x)");
        assert!(!state_safety(&e, &neg, &db()).unwrap().is_safe());
    }

    #[test]
    fn range_restriction_recovers_safe_outputs() {
        let e = AutomataEngine::new();
        for (calc, src) in [
            (Calculus::S, "exists y. (R(y) & x <= y)"),
            (Calculus::S, "R(x) & last(x,'b')"),
            (Calculus::SLen, "exists y. (R(y) & el(x,y))"),
            (Calculus::SLeft, "exists y. (R(y) & fa(y,x,'a'))"),
            (Calculus::SReg, "exists y. (R(y) & pl(x, y, /(ab)*/))"),
        ] {
            let query = q(calc, &["x"], src);
            let rr = RangeRestricted::derive(query);
            let out = rr.eval_checked(&e, &db()).unwrap();
            // eval_checked already asserts equality with the exact output.
            assert!(!out.is_empty(), "{src} should be nonempty");
        }
    }

    #[test]
    fn range_restriction_truncates_unsafe_queries_finitely() {
        let e = AutomataEngine::new();
        let unsafe_q = q(Calculus::S, &["x"], "exists y. (R(y) & y <= x)");
        let rr = RangeRestricted::derive(unsafe_q);
        // Must terminate with a finite relation even though φ(D) is
        // infinite.
        let out = rr.eval(&e, &db()).unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn gamma_shapes() {
        let query = q(Calculus::S, &["x"], "R(x)");
        let rr = RangeRestricted { query, k: 1 };
        let gamma = rr.gamma_automaton(&db(), 0);
        // prefixes of {ab,ba}·Σ^{≤1}.
        for (w, expect) in [
            ("", true),
            ("a", true),
            ("ab", true),
            ("aba", true),
            ("abab", false),
            ("bb", false),
        ] {
            assert_eq!(gamma.accepts(&[&s(w)]), expect, "gamma on {w}");
        }

        let query = q(Calculus::SLen, &["x"], "R(x)");
        let rr = RangeRestricted { query, k: 1 };
        let gamma = rr.gamma_automaton(&db(), 0);
        assert!(gamma.accepts(&[&s("bbb")])); // length 3 ≤ 2+1
        assert!(!gamma.accepts(&[&s("bbbb")]));
    }

    #[test]
    fn finiteness_sentence_agrees_with_automata() {
        let e = AutomataEngine::new();
        // Finite U.
        let u_fin = atoms::finite_set(2, 0, [s("ab"), s("b")].iter());
        assert!(finite_by_sentence(&e, &ab(), u_fin).unwrap());
        // Infinite U: all strings ending in a.
        let u_inf = atoms::last_sym(2, 0, 0);
        assert!(!finite_by_sentence(&e, &ab(), u_inf).unwrap());
        // Empty U is finite.
        let u_empty = atoms::no_strings(2, 0);
        assert!(finite_by_sentence(&e, &ab(), u_empty).unwrap());
    }

    #[test]
    fn prefix_closure_automaton_works() {
        let a = prefix_closure_automaton(2, 0, &[s("ab")]);
        assert!(a.accepts(&[&s("")]));
        assert!(a.accepts(&[&s("a")]));
        assert!(a.accepts(&[&s("ab")]));
        assert!(!a.accepts(&[&s("b")]));
        assert!(!a.accepts(&[&s("aba")]));
    }
}
