//! Cross-query admission: a shared resource pool over concurrent runs.
//!
//! PR 9's `Budget` governs one run; nothing stopped ten concurrent
//! runs, each individually within budget, from collectively exhausting
//! the process. A [`SharedLedger`] is a global pool of automaton
//! states, artifact bytes, and concurrent-run slots that governed runs
//! **reserve against before execution** (seeded from the plan's peak
//! certificate — the same abstract-interpretation bound
//! `admission::classify` reports) and release at settlement via the
//! [`Reservation`] guard's `Drop`.
//!
//! Over-subscription is never silent: [`SharedLedger::try_reserve`]
//! returns a structured [`AdmissionShortfall`] (surfaced as
//! `CoreError::AdmissionDenied`), and callers holding an
//! `AutomatonCache` may evict cold entries to cover a byte shortfall
//! before giving up (SA430). [`SharedLedger::reserve_blocking`] queues
//! instead, waking when an earlier reservation settles.

#![deny(clippy::unwrap_used)]

use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

use crate::budget::UNLIMITED;

/// What a run asks the ledger for. States and bytes come from the
/// plan's peak certificate (`hi` bounds); interpreter-only plans whose
/// certificate is all-zero reserve a slot and nothing else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReserveRequest {
    pub states: u64,
    pub bytes: u64,
}

/// The structured reason a reservation could not be granted: how much
/// of each dimension was missing from the pool at the attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionShortfall {
    pub states: u64,
    pub bytes: u64,
    pub slots: u64,
}

impl AdmissionShortfall {
    pub fn is_zero(&self) -> bool {
        self.states == 0 && self.bytes == 0 && self.slots == 0
    }
}

impl fmt::Display for AdmissionShortfall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.states > 0 {
            parts.push(format!("{} states", self.states));
        }
        if self.bytes > 0 {
            parts.push(format!("{} bytes", self.bytes));
        }
        if self.slots > 0 {
            parts.push("a run slot".to_string());
        }
        write!(f, "short {}", parts.join(", "))
    }
}

#[derive(Debug, Clone, Copy)]
struct Avail {
    states: u64,
    bytes: u64,
    slots: u64,
}

#[derive(Debug)]
struct Pool {
    avail: Mutex<Avail>,
    settled: Condvar,
}

/// An atomic global pool of states, bytes, and concurrent-run slots.
///
/// Admission is a cold path (once per run, not per tuple), so the pool
/// is a mutex + condvar rather than lock-free atomics: the condvar
/// gives [`reserve_blocking`](SharedLedger::reserve_blocking) its
/// queue-until-settlement semantics for free.
#[derive(Debug)]
pub struct SharedLedger {
    pool: Arc<Pool>,
    capacity: Avail,
}

impl SharedLedger {
    /// A ledger with the given capacities. `UNLIMITED` (`u64::MAX`)
    /// disables accounting for that dimension.
    pub fn new(states: u64, bytes: u64, slots: u64) -> SharedLedger {
        let capacity = Avail {
            states,
            bytes,
            slots,
        };
        SharedLedger {
            pool: Arc::new(Pool {
                avail: Mutex::new(capacity),
                settled: Condvar::new(),
            }),
            capacity,
        }
    }

    /// A ledger that admits everything: unlimited in every dimension.
    pub fn unlimited() -> SharedLedger {
        SharedLedger::new(UNLIMITED, UNLIMITED, UNLIMITED)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Avail> {
        // A panic while holding the pool lock leaves only plain
        // counters behind; recover the guard rather than poisoning
        // every future admission.
        self.pool
            .avail
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn shortfall(avail: &Avail, req: ReserveRequest) -> AdmissionShortfall {
        AdmissionShortfall {
            states: if avail.states == UNLIMITED {
                0
            } else {
                req.states.saturating_sub(avail.states)
            },
            bytes: if avail.bytes == UNLIMITED {
                0
            } else {
                req.bytes.saturating_sub(avail.bytes)
            },
            slots: u64::from(avail.slots != UNLIMITED && avail.slots == 0),
        }
    }

    fn debit(avail: &mut Avail, req: ReserveRequest) {
        if avail.states != UNLIMITED {
            avail.states -= req.states;
        }
        if avail.bytes != UNLIMITED {
            avail.bytes -= req.bytes;
        }
        if avail.slots != UNLIMITED {
            avail.slots -= 1;
        }
    }

    /// Attempts to reserve `req` plus one run slot. On success the
    /// returned guard holds the reservation until dropped (settlement).
    /// On failure the pool is untouched and the shortfall reports what
    /// was missing.
    pub fn try_reserve(
        self: &Arc<Self>,
        req: ReserveRequest,
    ) -> Result<Reservation, AdmissionShortfall> {
        let mut avail = self.lock();
        let short = Self::shortfall(&avail, req);
        if !short.is_zero() {
            return Err(short);
        }
        Self::debit(&mut avail, req);
        Ok(Reservation {
            ledger: Arc::clone(self),
            req,
        })
    }

    /// Reserves, queuing until earlier reservations settle if the pool
    /// is currently over-subscribed. Returns an error immediately —
    /// without queuing — when `req` exceeds the ledger's total
    /// capacity (no settlement could ever admit it).
    pub fn reserve_blocking(
        self: &Arc<Self>,
        req: ReserveRequest,
    ) -> Result<Reservation, AdmissionShortfall> {
        let cap_short = Self::shortfall(&self.capacity, req);
        if !cap_short.is_zero() {
            return Err(cap_short);
        }
        let mut avail = self.lock();
        while !Self::shortfall(&avail, req).is_zero() {
            avail = self
                .pool
                .settled
                .wait(avail)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        Self::debit(&mut avail, req);
        Ok(Reservation {
            ledger: Arc::clone(self),
            req,
        })
    }

    /// Returns `n` bytes to the pool outside any reservation — the hook
    /// for reclaimed memory (e.g. cache entries evicted to cover a
    /// shortfall) entering the admission account. Clamped to capacity;
    /// wakes queued reservations.
    pub fn credit_bytes(&self, n: u64) {
        {
            let mut avail = self.lock();
            if avail.bytes != UNLIMITED {
                avail.bytes = avail.bytes.saturating_add(n).min(self.capacity.bytes);
            }
        }
        self.pool.settled.notify_all();
    }

    /// A snapshot of the currently available pool
    /// `(states, bytes, slots)`.
    pub fn available(&self) -> (u64, u64, u64) {
        let avail = self.lock();
        (avail.states, avail.bytes, avail.slots)
    }
}

/// A granted reservation; releases its states, bytes, and run slot
/// back to the pool — and wakes queued reservations — when dropped.
#[derive(Debug)]
pub struct Reservation {
    ledger: Arc<SharedLedger>,
    req: ReserveRequest,
}

impl Reservation {
    /// The request this reservation was granted for.
    pub fn request(&self) -> ReserveRequest {
        self.req
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        {
            let mut avail = self.ledger.lock();
            if avail.states != UNLIMITED {
                avail.states = avail
                    .states
                    .saturating_add(self.req.states)
                    .min(self.ledger.capacity.states);
            }
            if avail.bytes != UNLIMITED {
                avail.bytes = avail
                    .bytes
                    .saturating_add(self.req.bytes)
                    .min(self.ledger.capacity.bytes);
            }
            if avail.slots != UNLIMITED {
                avail.slots = avail
                    .slots
                    .saturating_add(1)
                    .min(self.ledger.capacity.slots);
            }
        }
        self.ledger.pool.settled.notify_all();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    fn req(states: u64, bytes: u64) -> ReserveRequest {
        ReserveRequest { states, bytes }
    }

    #[test]
    fn reserve_and_release_round_trips() {
        let ledger = Arc::new(SharedLedger::new(100, 1000, 2));
        let r = ledger.try_reserve(req(40, 400)).unwrap();
        assert_eq!(ledger.available(), (60, 600, 1));
        drop(r);
        assert_eq!(ledger.available(), (100, 1000, 2));
    }

    #[test]
    fn oversubscription_reports_the_shortfall() {
        let ledger = Arc::new(SharedLedger::new(100, 1000, 2));
        let _held = ledger.try_reserve(req(80, 0)).unwrap();
        let short = ledger.try_reserve(req(50, 0)).unwrap_err();
        assert_eq!(short.states, 30);
        assert_eq!(short.bytes, 0);
        assert_eq!(short.slots, 0);
        assert!(short.to_string().contains("30 states"));
        // The failed attempt must not have debited anything.
        assert_eq!(ledger.available(), (20, 1000, 1));
    }

    #[test]
    fn slots_gate_concurrency_even_with_zero_demand() {
        let ledger = Arc::new(SharedLedger::new(UNLIMITED, UNLIMITED, 1));
        let held = ledger.try_reserve(req(0, 0)).unwrap();
        let short = ledger.try_reserve(req(0, 0)).unwrap_err();
        assert_eq!(short.slots, 1);
        drop(held);
        assert!(ledger.try_reserve(req(0, 0)).is_ok());
    }

    #[test]
    fn unlimited_dimensions_are_not_accounted() {
        let ledger = Arc::new(SharedLedger::unlimited());
        let _a = ledger.try_reserve(req(u64::MAX / 2, u64::MAX / 2)).unwrap();
        let _b = ledger.try_reserve(req(u64::MAX / 2, u64::MAX / 2)).unwrap();
        assert_eq!(ledger.available(), (UNLIMITED, UNLIMITED, UNLIMITED));
    }

    #[test]
    fn blocking_reservation_queues_until_settlement() {
        let ledger = Arc::new(SharedLedger::new(100, UNLIMITED, UNLIMITED));
        let held = ledger.try_reserve(req(80, 0)).unwrap();
        let ledger2 = Arc::clone(&ledger);
        let waiter = thread::spawn(move || {
            let r = ledger2.reserve_blocking(req(50, 0)).unwrap();
            r.request().states
        });
        // Give the waiter time to actually block on the condvar.
        thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished(), "waiter must queue, not spin through");
        drop(held);
        assert_eq!(waiter.join().unwrap(), 50);
        assert_eq!(ledger.available(), (100, UNLIMITED, UNLIMITED));
    }

    #[test]
    fn impossible_demand_fails_fast_instead_of_queuing() {
        let ledger = Arc::new(SharedLedger::new(100, UNLIMITED, UNLIMITED));
        let short = ledger.reserve_blocking(req(200, 0)).unwrap_err();
        assert_eq!(short.states, 100);
    }
}
