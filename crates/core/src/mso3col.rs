//! Proposition 5, executably: NP-complete queries in `RC(S_len)` on
//! bounded-width databases.
//!
//! The paper: *"For every fixed k, all MSO(SC)-expressible queries can be
//! expressed over databases of width at most k in RC(SC, S_len)"* — in
//! particular 3-colorability, the canonical NP-complete MSO query.
//!
//! ## The encoding
//!
//! Vertex `i` (1-based) becomes the string `v_i = aⁱb`. These strings are
//! pairwise prefix-incomparable (**width 1**) yet have pairwise distinct
//! lengths `i+1`, which is the hook for second-order quantification over
//! `S_len`: a *set* of vertices is encoded by a single string `s`, with
//!
//! ```text
//! i ∈ s   ⟺   ∃z (z ⪯ s ∧ el(z, v_i) ∧ L_b(z))
//! ```
//!
//! ("the prefix of `s` of length `|v_i|` ends in `b`"). Quantifying
//! `∃s₁ ∃s₂ ∃s₃` over the **infinite** domain `Σ*` — which the automata
//! engine does exactly — yields genuine existential set quantification,
//! and 3-colorability becomes the fixed `RC(S_len)` sentence
//! [`three_col_sentence`]:
//!
//! ```text
//! ∃s₁s₂s₃ [ ∀x (V(x) → exactly-one color) ∧
//!           ∀x∀y (E(x,y) → no shared color) ]
//! ```
//!
//! Deciding this sentence is genuinely exponential in the graph size
//! (it had better be — the query is NP-complete); the benches chart the
//! blow-up against a direct backtracking solver.

use strcalc_alphabet::{Alphabet, Str};
use strcalc_logic::{Formula, Term};
use strcalc_relational::Database;

use crate::engine::AutomataEngine;
use crate::query::{Calculus, CoreError, Query};

/// An undirected graph on vertices `1..=n`.
#[derive(Debug, Clone)]
pub struct Graph {
    pub n: usize,
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// The complete graph `K_n`.
    pub fn complete(n: usize) -> Graph {
        let mut edges = Vec::new();
        for i in 1..=n {
            for j in (i + 1)..=n {
                edges.push((i, j));
            }
        }
        Graph { n, edges }
    }

    /// The cycle `C_n`.
    pub fn cycle(n: usize) -> Graph {
        let edges = (1..=n).map(|i| (i, i % n + 1)).collect();
        Graph { n, edges }
    }

    /// Direct backtracking 3-colorability (the baseline solver).
    pub fn three_colorable(&self) -> bool {
        let mut color = vec![0u8; self.n + 1];
        let adj = self.adjacency();
        self.backtrack(1, &mut color, &adj)
    }

    fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n + 1];
        for &(u, v) in &self.edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        adj
    }

    fn backtrack(&self, v: usize, color: &mut Vec<u8>, adj: &[Vec<usize>]) -> bool {
        if v > self.n {
            return true;
        }
        for c in 1..=3 {
            if adj[v].iter().all(|&u| color[u] != c) {
                color[v] = c;
                if self.backtrack(v + 1, color, adj) {
                    return true;
                }
                color[v] = 0;
            }
        }
        false
    }
}

/// Encodes a graph as a width-1 string database over `{a, b}`:
/// `V(aⁱb)` for each vertex, `E(aⁱb, aʲb)` for each edge (one direction
/// suffices for the symmetric constraint below).
pub fn encode_graph(alphabet: &Alphabet, g: &Graph) -> Result<Database, CoreError> {
    assert!(alphabet.len() >= 2, "need at least two symbols");
    let code = |i: usize| -> Str {
        let mut syms = vec![0u8; i];
        syms.push(1);
        Str::from_syms(syms)
    };
    let mut db = Database::new();
    db.declare("V", 1)?;
    db.declare("E", 2)?;
    for i in 1..=g.n {
        db.insert("V", vec![code(i)])?;
    }
    for &(u, v) in &g.edges {
        db.insert("E", vec![code(u), code(v)])?;
    }
    Ok(db)
}

/// `color(s, x)`: vertex `x` is in the set encoded by `s`.
fn has_color(s: &str, x: &str) -> Formula {
    Formula::exists(
        "z",
        Formula::prefix(Term::var("z"), Term::var(s))
            .and(Formula::eq_len(Term::var("z"), Term::var(x)))
            .and(Formula::last_sym(Term::var("z"), 1)),
    )
}

/// The fixed `RC(S_len)` sentence deciding 3-colorability of the encoded
/// graph (Proposition 5's construction, instantiated).
pub fn three_col_sentence() -> Formula {
    let colors = ["s1", "s2", "s3"];
    // Every vertex has at least one color…
    let some_color = Formula::or_all(colors.iter().map(|s| has_color(s, "x")));
    // …and no two colors.
    let not_two = Formula::and_all((0..3).flat_map(|i| ((i + 1)..3).map(move |j| (i, j))).map(
        |(i, j)| {
            has_color(colors[i], "x")
                .and(has_color(colors[j], "x"))
                .not()
        },
    ));
    let vertex_ok = Formula::forall(
        "x",
        Formula::rel("V", vec![Term::var("x")]).implies(some_color.and(not_two)),
    );
    // No edge is monochromatic.
    let no_clash = Formula::and_all(
        colors
            .iter()
            .map(|s| has_color(s, "x").and(has_color(s, "y")).not()),
    );
    let edges_ok = Formula::forall(
        "x",
        Formula::forall(
            "y",
            Formula::rel("E", vec![Term::var("x"), Term::var("y")]).implies(no_clash),
        ),
    );
    let mut sentence = vertex_ok.and(edges_ok);
    for s in colors.iter().rev() {
        sentence = Formula::exists(*s, sentence);
    }
    sentence
}

/// Decides 3-colorability through the `RC(S_len)` sentence, exactly.
pub fn three_colorable_via_slen(
    engine: &AutomataEngine,
    alphabet: &Alphabet,
    g: &Graph,
) -> Result<bool, CoreError> {
    let db = encode_graph(alphabet, g)?;
    debug_assert_eq!(db.adom_width(), 1, "encoding must be width 1");
    let q = Query::new(
        Calculus::SLen,
        alphabet.clone(),
        vec![],
        three_col_sentence(),
    )?;
    engine.eval_bool(&q, &db)
}

/// The open variant of [`three_col_sentence`]: the color-set strings
/// `s₁, s₂, s₃` left free, so the query output *is* the set of valid
/// colorings.
pub fn three_col_open() -> Formula {
    match three_col_sentence() {
        Formula::Exists(_, f1) => match *f1 {
            Formula::Exists(_, f2) => match *f2 {
                Formula::Exists(_, body) => *body,
                other => other,
            },
            other => other,
        },
        other => other,
    }
}

/// Extracts an actual 3-coloring **certificate** (color 1–3 per vertex)
/// from the automaton: compile the open query, take the shortest
/// accepted `(s₁, s₂, s₃)` witness, and decode the per-vertex bits. This
/// is the constructive payoff of quantifying sets as strings — the
/// "second-order witness" is a real string the engine can hand back.
pub fn find_coloring_via_slen(
    engine: &AutomataEngine,
    alphabet: &Alphabet,
    g: &Graph,
) -> Result<Option<Vec<u8>>, CoreError> {
    let db = encode_graph(alphabet, g)?;
    let q = Query::new(
        Calculus::SLen,
        alphabet.clone(),
        vec!["s1".into(), "s2".into(), "s3".into()],
        three_col_open(),
    )?;
    let compiled = engine.compile(&q, &db)?;
    let Some(witness) = compiled.auto.witness() else {
        return Ok(None);
    };
    // Track order = sorted names = s1, s2, s3.
    let bit = |s: &Str, len: usize| -> bool {
        s.syms().get(len - 1).copied() == Some(1) // prefix of length `len` ends in b
    };
    let mut colors = Vec::with_capacity(g.n);
    for i in 1..=g.n {
        let vlen = i + 1; // |aⁱb|
        let c = (1..=3)
            .find(|&j| bit(&witness[j - 1], vlen))
            .expect("exactly-one constraint guarantees a color") as u8;
        colors.push(c);
    }
    Ok(Some(colors))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn encoding_is_width_one() {
        let g = Graph::cycle(4);
        let db = encode_graph(&ab(), &g).unwrap();
        assert_eq!(db.adom_width(), 1);
        assert_eq!(db.relation("V").unwrap().len(), 4);
        assert_eq!(db.relation("E").unwrap().len(), 4);
    }

    #[test]
    fn direct_solver_sanity() {
        assert!(Graph::cycle(4).three_colorable());
        assert!(Graph::cycle(5).three_colorable());
        assert!(Graph::complete(3).three_colorable());
        assert!(!Graph::complete(4).three_colorable());
    }

    #[test]
    fn coloring_certificates_are_proper() {
        let engine = AutomataEngine::new();
        for g in [Graph::cycle(4), Graph::cycle(5), Graph::complete(3)] {
            let colors = find_coloring_via_slen(&engine, &ab(), &g)
                .unwrap()
                .expect("these graphs are 3-colorable");
            assert_eq!(colors.len(), g.n);
            for &(u, v) in &g.edges {
                assert_ne!(
                    colors[u - 1],
                    colors[v - 1],
                    "edge ({u},{v}) monochromatic in {colors:?}"
                );
            }
        }
        // K4 has no certificate.
        assert!(find_coloring_via_slen(&engine, &ab(), &Graph::complete(4))
            .unwrap()
            .is_none());
    }

    #[test]
    fn slen_sentence_matches_solver_on_small_graphs() {
        let engine = AutomataEngine::new();
        let cases = [
            Graph::cycle(3),
            Graph::complete(3),
            Graph::complete(4),
            Graph {
                n: 3,
                edges: vec![(1, 2)],
            },
            Graph {
                n: 2,
                edges: vec![(1, 2)],
            },
        ];
        for g in &cases {
            let expect = g.three_colorable();
            let got = three_colorable_via_slen(&engine, &ab(), g).unwrap();
            assert_eq!(
                got, expect,
                "disagreement on graph with n={} edges={:?}",
                g.n, g.edges
            );
        }
    }
}
