//! Typed queries over the four tame calculi.

use std::fmt;

use strcalc_alphabet::{Alphabet, Str};
use strcalc_analyze::{Analysis, Analyzer};
use strcalc_logic::transform::fragment;
use strcalc_logic::{CompileError, Formula, LogicError, StructureClass};
use strcalc_relational::{DbError, RaError, Relation};
use strcalc_synchro::SynchroError;

/// The four tame calculi of the paper (Figure 1, minus the
/// computationally complete `RC_concat`, which lives in
/// [`crate::concat`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Calculus {
    /// `RC(S)`: prefix order and last-symbol tests — `LIKE` and `≤_lex`.
    S,
    /// `RC(S_left)`: adds prepend/trim-leading (`F_a`).
    SLeft,
    /// `RC(S_reg)`: adds regular pattern matching (`P_L`, `SIMILAR`).
    SReg,
    /// `RC(S_len)`: adds length comparison (`el`); PH-hard data
    /// complexity (Corollary 4).
    SLen,
}

impl Calculus {
    /// The corresponding point of the structure lattice.
    pub fn structure_class(self) -> StructureClass {
        match self {
            Calculus::S => StructureClass::S,
            Calculus::SLeft => StructureClass::SLeft,
            Calculus::SReg => StructureClass::SReg,
            Calculus::SLen => StructureClass::SLen,
        }
    }

    /// All four calculi, in lattice-compatible order.
    pub fn all() -> [Calculus; 4] {
        [Calculus::S, Calculus::SLeft, Calculus::SReg, Calculus::SLen]
    }

    pub fn name(self) -> &'static str {
        match self {
            Calculus::S => "RC(S)",
            Calculus::SLeft => "RC(S_left)",
            Calculus::SReg => "RC(S_reg)",
            Calculus::SLen => "RC(S_len)",
        }
    }
}

impl fmt::Display for Calculus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors from the core layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The formula uses atoms outside the declared calculus.
    FragmentViolation {
        declared: Calculus,
        inferred: StructureClass,
    },
    /// The head lists a variable that is not free in the formula, or
    /// misses one that is.
    HeadMismatch {
        head: Vec<String>,
        free: Vec<String>,
    },
    /// Formula-level analysis failed.
    Logic(LogicError),
    /// Compilation failed.
    Compile(CompileError),
    /// Automata-layer failure.
    Synchro(SynchroError),
    /// Database error.
    Db(DbError),
    /// Algebra error.
    Ra(RaError),
    /// Static analysis produced error-level diagnostics (only from the
    /// opt-in [`Query::analyzed`] path). The full [`Analysis`] is
    /// carried so callers can render every diagnostic, not just the
    /// errors.
    StaticAnalysis(Box<Analysis>),
    /// Planlint rejected the plan: a planning pass produced a tree that
    /// fails typing (SA20x/SA22x) or inflates the resource certificate
    /// (SA221). `stage` names the pass after which verification failed;
    /// `diagnostics` are the rendered error-level diagnostics.
    PlanRejected {
        stage: String,
        diagnostics: Vec<String>,
    },
    /// The query output is infinite but a finite result was required.
    InfiniteOutput,
    /// A handed budget capability was exhausted under the fail policy
    /// (`DegradationPolicy::Fail`): the run is rejected instead of
    /// degrading. `node` is the ledger path of the first plan node
    /// whose certified demand exceeded the budget it was handed.
    BudgetExhausted { node: String, detail: String },
    /// The cross-query [`SharedLedger`](crate::ledger::SharedLedger)
    /// could not admit the run: its certified reservation exceeded the
    /// available pool (even after budget-aware cache eviction).
    AdmissionDenied { detail: String },
    /// A cooperative deadline fired under `DegradationPolicy::Fail`:
    /// the run is rejected at the checkpoint instead of degrading.
    /// `checkpoint` is the (deterministic, replayable) checkpoint index
    /// at which the deadline fired.
    DeadlineExpired { checkpoint: u64, detail: String },
    /// Operation not supported for this query shape (documented per API).
    Unsupported(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::FragmentViolation { declared, inferred } => write!(
                f,
                "formula needs {} but the query declares {declared}",
                inferred.name()
            ),
            CoreError::HeadMismatch { head, free } => write!(
                f,
                "query head {head:?} does not match the free variables {free:?}"
            ),
            CoreError::Logic(e) => write!(f, "{e}"),
            CoreError::Compile(e) => write!(f, "{e}"),
            CoreError::Synchro(e) => write!(f, "{e}"),
            CoreError::Db(e) => write!(f, "{e}"),
            CoreError::Ra(e) => write!(f, "{e}"),
            CoreError::StaticAnalysis(analysis) => {
                let errors: Vec<String> = analysis
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == strcalc_analyze::Severity::Error)
                    .map(|d| d.render())
                    .collect();
                write!(
                    f,
                    "static analysis rejected the query:\n{}",
                    errors.join("\n")
                )
            }
            CoreError::PlanRejected { stage, diagnostics } => write!(
                f,
                "planlint rejected the plan after the {stage} stage:\n{}",
                diagnostics.join("\n")
            ),
            CoreError::InfiniteOutput => write!(f, "query output is infinite"),
            CoreError::BudgetExhausted { node, detail } => write!(
                f,
                "budget exhausted at {node} under the fail policy: {detail}"
            ),
            CoreError::AdmissionDenied { detail } => {
                write!(f, "admission denied by the shared ledger: {detail}")
            }
            CoreError::DeadlineExpired { checkpoint, detail } => write!(
                f,
                "deadline expired at checkpoint {checkpoint} under the fail policy: {detail}"
            ),
            CoreError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<LogicError> for CoreError {
    fn from(e: LogicError) -> Self {
        CoreError::Logic(e)
    }
}

impl From<CompileError> for CoreError {
    fn from(e: CompileError) -> Self {
        CoreError::Compile(e)
    }
}

impl From<SynchroError> for CoreError {
    fn from(e: SynchroError) -> Self {
        CoreError::Synchro(e)
    }
}

impl From<DbError> for CoreError {
    fn from(e: DbError) -> Self {
        CoreError::Db(e)
    }
}

impl From<RaError> for CoreError {
    fn from(e: RaError) -> Self {
        CoreError::Ra(e)
    }
}

/// A typed query: a calculus, an alphabet, a head (the output column
/// order) and a formula whose free variables are exactly the head.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub calculus: Calculus,
    pub alphabet: Alphabet,
    /// Output column order. Must equal the formula's free variables as a
    /// set; a sentence has an empty head.
    pub head: Vec<String>,
    pub formula: Formula,
}

impl Query {
    /// Builds and validates a query: the head must list exactly the free
    /// variables, and every atom must fit the declared calculus
    /// (star-freeness of `in`/`pl` languages is decided with a default
    /// monoid cap).
    pub fn new(
        calculus: Calculus,
        alphabet: Alphabet,
        head: Vec<String>,
        formula: Formula,
    ) -> Result<Query, CoreError> {
        let free: Vec<String> = formula.free_vars().into_iter().collect();
        let mut head_sorted = head.clone();
        head_sorted.sort();
        head_sorted.dedup();
        if head_sorted != free || head_sorted.len() != head.len() {
            return Err(CoreError::HeadMismatch { head, free });
        }
        let inferred = fragment(&formula, alphabet.len() as u8, 1_000_000)?;
        if !inferred.leq(calculus.structure_class()) {
            return Err(CoreError::FragmentViolation {
                declared: calculus,
                inferred,
            });
        }
        Ok(Query {
            calculus,
            alphabet,
            head,
            formula,
        })
    }

    /// Builds a query, inferring the least sufficient calculus.
    pub fn infer(
        alphabet: Alphabet,
        head: Vec<String>,
        formula: Formula,
    ) -> Result<Query, CoreError> {
        let inferred = fragment(&formula, alphabet.len() as u8, 1_000_000)?;
        let calculus = match inferred {
            StructureClass::S => Calculus::S,
            StructureClass::SLeft => Calculus::SLeft,
            StructureClass::SReg => Calculus::SReg,
            StructureClass::SLen => Calculus::SLen,
            StructureClass::Concat => {
                return Err(CoreError::Unsupported(
                    "concatenation queries belong to RC_concat; use ConcatEvaluator".into(),
                ))
            }
        };
        Query::new(calculus, alphabet, head, formula)
    }

    /// Parses the formula from concrete syntax and builds a query.
    pub fn parse(
        calculus: Calculus,
        alphabet: Alphabet,
        head: Vec<String>,
        src: &str,
    ) -> Result<Query, CoreError> {
        let formula = strcalc_logic::parse_formula(&alphabet, src)?;
        Query::new(calculus, alphabet, head, formula)
    }

    /// Builds a query with the full static analyzer in the loop
    /// (opt-in: [`Query::new`] only enforces the fragment check). Runs
    /// `strcalc-analyze`'s four passes with default lint levels; if any
    /// diagnostic is error-level the query is rejected with
    /// [`CoreError::StaticAnalysis`], otherwise the query is returned
    /// together with the [`Analysis`] (whose warnings and notes the
    /// caller can surface).
    pub fn analyzed(
        calculus: Calculus,
        alphabet: Alphabet,
        head: Vec<String>,
        formula: Formula,
    ) -> Result<(Query, Analysis), CoreError> {
        Query::analyzed_with(calculus, alphabet, head, formula, |a| a)
    }

    /// [`Query::analyzed`] with analyzer configuration: `configure`
    /// receives the default analyzer for `calculus` and can adjust lint
    /// levels or budgets before it runs.
    pub fn analyzed_with(
        calculus: Calculus,
        alphabet: Alphabet,
        head: Vec<String>,
        formula: Formula,
        configure: impl FnOnce(Analyzer) -> Analyzer,
    ) -> Result<(Query, Analysis), CoreError> {
        // Same monoid cap as `Query::new`, so the two paths agree on
        // star-freeness.
        let analyzer = configure(Analyzer::new(calculus.structure_class()).monoid_cap(1_000_000));
        let analysis = analyzer.analyze(&alphabet, &formula);
        if analysis.has_errors() {
            return Err(CoreError::StaticAnalysis(Box::new(analysis)));
        }
        let query = Query::new(calculus, alphabet, head, formula)?;
        Ok((query, analysis))
    }

    /// `true` iff this is a sentence (Boolean query).
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// Output arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }
}

/// The result of exact evaluation: either a finite relation (with tuples
/// in head order) or a proof that the output is infinite.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalOutput {
    /// The output is finite; tuples are materialized.
    Finite(Relation),
    /// The output is infinite. `sample` holds the first few tuples (in
    /// convolution-length order) as evidence.
    Infinite { sample: Vec<Vec<Str>> },
}

impl EvalOutput {
    /// Unwraps the finite case.
    ///
    /// # Panics
    ///
    /// Panics if the output is infinite.
    pub fn expect_finite(self) -> Relation {
        match self {
            EvalOutput::Finite(r) => r,
            EvalOutput::Infinite { .. } => panic!("query output is infinite"),
        }
    }

    pub fn is_finite(&self) -> bool {
        matches!(self, EvalOutput::Finite(_))
    }

    /// Number of tuples, if finite.
    pub fn len(&self) -> Option<usize> {
        match self {
            EvalOutput::Finite(r) => Some(r.len()),
            EvalOutput::Infinite { .. } => None,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strcalc_logic::Term;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn head_must_match_free_vars() {
        let f = Formula::prefix(Term::var("x"), Term::var("y"));
        assert!(Query::new(Calculus::S, ab(), vec!["x".into(), "y".into()], f.clone()).is_ok());
        assert!(matches!(
            Query::new(Calculus::S, ab(), vec!["x".into()], f.clone()),
            Err(CoreError::HeadMismatch { .. })
        ));
        assert!(matches!(
            Query::new(
                Calculus::S,
                ab(),
                vec!["x".into(), "x".into(), "y".into()],
                f
            ),
            Err(CoreError::HeadMismatch { .. })
        ));
    }

    #[test]
    fn fragment_is_enforced() {
        let f = Formula::eq_len(Term::var("x"), Term::var("y"));
        assert!(matches!(
            Query::new(Calculus::S, ab(), vec!["x".into(), "y".into()], f.clone()),
            Err(CoreError::FragmentViolation { .. })
        ));
        assert!(Query::new(Calculus::SLen, ab(), vec!["x".into(), "y".into()], f).is_ok());
    }

    #[test]
    fn inference_picks_least_calculus() {
        let f = Formula::prepends(Term::var("x"), Term::var("y"), 0);
        let q = Query::infer(ab(), vec!["x".into(), "y".into()], f).unwrap();
        assert_eq!(q.calculus, Calculus::SLeft);
        let f = Formula::prefix(Term::var("x"), Term::var("y"));
        let q = Query::infer(ab(), vec!["x".into(), "y".into()], f).unwrap();
        assert_eq!(q.calculus, Calculus::S);
    }

    #[test]
    fn calculus_lattice_names() {
        for c in Calculus::all() {
            assert!(c.name().starts_with("RC("));
            assert!(StructureClass::S.leq(c.structure_class()));
        }
    }

    #[test]
    fn analyzed_rejects_fragment_violations_with_diagnostics() {
        use strcalc_analyze::Code;
        // prepend term in RC(S): SA001 at a precise path.
        let f = Formula::eq(Term::var("y"), Term::var("x").prepend(0));
        let err = Query::analyzed(Calculus::S, ab(), vec!["x".into(), "y".into()], f).unwrap_err();
        match err {
            CoreError::StaticAnalysis(analysis) => {
                assert!(analysis.has_errors());
                assert!(analysis
                    .with_code(Code::SignatureExceedsDeclared)
                    .next()
                    .is_some());
            }
            other => panic!("expected StaticAnalysis, got {other:?}"),
        }
    }

    #[test]
    fn analyzed_accepts_clean_queries_with_warnings_attached() {
        use strcalc_analyze::Code;
        // Safe query: only the SA030 cost note survives.
        let f = Formula::rel("R", vec![Term::var("x")]);
        let (q, analysis) = Query::analyzed(Calculus::S, ab(), vec!["x".into()], f).unwrap();
        assert_eq!(q.arity(), 1);
        assert!(!analysis.has_errors());
        assert!(analysis.with_code(Code::CostReport).next().is_some());

        // Unsafe but well-formed query: accepted, SA010 warning attached.
        let f = Formula::prefix(Term::var("x"), Term::var("y"));
        let (_, analysis) =
            Query::analyzed(Calculus::S, ab(), vec!["x".into(), "y".into()], f).unwrap();
        assert_eq!(
            analysis.with_code(Code::FreeVarNotRangeRestricted).count(),
            2
        );
    }

    #[test]
    fn analyzed_with_honours_lint_config() {
        use strcalc_analyze::{Code, LintLevel};
        let f = Formula::prefix(Term::var("x"), Term::var("y"));
        // Deny SA010: the unsafe query is now rejected.
        let err = Query::analyzed_with(
            Calculus::S,
            ab(),
            vec!["x".into(), "y".into()],
            f.clone(),
            |a| a.lint(Code::FreeVarNotRangeRestricted, LintLevel::Deny),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::StaticAnalysis(_)));
        // Allow it: accepted with no SA010 diagnostic at all.
        let (_, analysis) =
            Query::analyzed_with(Calculus::S, ab(), vec!["x".into(), "y".into()], f, |a| {
                a.lint(Code::FreeVarNotRangeRestricted, LintLevel::Allow)
            })
            .unwrap();
        assert_eq!(
            analysis.with_code(Code::FreeVarNotRangeRestricted).count(),
            0
        );
    }

    #[test]
    fn parse_builds_queries() {
        let q = Query::parse(
            Calculus::S,
            ab(),
            vec!["x".into()],
            "exists y. (R(y) & x <= y)",
        )
        .unwrap();
        assert_eq!(q.arity(), 1);
        assert!(!q.is_boolean());
        let q = Query::parse(Calculus::S, ab(), vec![], "exists y. R(y)").unwrap();
        assert!(q.is_boolean());
    }
}
