//! Explicit resource-budget capabilities for plan execution.
//!
//! Historically the engine bounded itself through three ad-hoc,
//! *ambient* mechanisms: the automata engine's complement cap (copied
//! into every `Complement { cap }` node), the planner's bounded-search
//! length `B` (copied into the `BoundedSearch { budget }` root), and
//! the cache's byte budget. A [`Budget`] replaces them with one
//! capability value that is handed *down* the plan tree: the planner
//! seeds it from the planlint resource certificate plus
//! `analyze::admission::classify`, every executor checks the budget it
//! was handed (see `Plan::execute_with`), and a parent node hands each
//! child an explicit sub-budget via [`Budget::child_for`] /
//! [`Budget::split`]. Exhaustion never truncates silently: per
//! [`DegradationPolicy`] the run either degrades *structurally* —
//! exact → bounded verdict, dense → sparse walk, cached →
//! recompile-denied — surfacing an SA4xx [`Degradation`] in the
//! `ExecReport`, or fails with `CoreError::BudgetExhausted`.
//!
//! The arithmetic follows the cache's byte-accounting idiom
//! (`checked_sub` + `debug_assert`, panic-audit round 6): a debit that
//! would underflow is an accounting bug in debug builds and saturates
//! in release builds, never wrapping.

// Panic-audit round 7: budgets sit on every execution path, so the
// module is unwrap-free; invariants are spelled out as messaged
// `expect`s or `debug_assert`s.
#![deny(clippy::unwrap_used)]

use std::fmt;

use strcalc_analyze::planlint::{fmt_bound, ResourceCert};
use strcalc_analyze::Code;

/// Sentinel for an unbounded dimension. An unlimited dimension never
/// debits and always admits.
pub const UNLIMITED: u64 = u64::MAX;

/// What an executor does when a handed budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DegradationPolicy {
    /// Degrade structurally (exact → bounded verdict, dense → sparse
    /// walk, cached → recompile-denied) and surface an SA4xx
    /// [`Degradation`] in the report. The default.
    #[default]
    Degrade,
    /// Reject the run with `CoreError::BudgetExhausted` instead of
    /// degrading (multi-tenant admission control).
    Fail,
}

impl DegradationPolicy {
    pub fn name(self) -> &'static str {
        match self {
            DegradationPolicy::Degrade => "degrade",
            DegradationPolicy::Fail => "fail",
        }
    }
}

/// A resource-budget capability: what a plan (or plan node) is allowed
/// to spend. Handed down explicitly — a node checks the budget it was
/// *given*, not an ambient global.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Automaton states the subtree may build ([`UNLIMITED`] = no cap).
    pub states: u64,
    /// Artifact/table bytes the subtree may hold resident.
    pub bytes: u64,
    /// Wall-clock allowance in milliseconds, enforced *in flight* by a
    /// cooperative [`Deadline`](crate::clock::Deadline) polled at
    /// coarse checkpoints (per dense batch, per enumeration-frontier
    /// candidate, per search assignment, before compilation). Expiry
    /// degrades structurally (SA41x, `Bounded`/`Unknown` verdict) at
    /// the checkpoint — and because degradations record the
    /// *checkpoint index*, never elapsed time, the event replays
    /// deterministically over a frozen virtual clock. The clean
    /// configuration leaves it [`UNLIMITED`].
    pub wall_time_ms: u64,
    /// Length bound for the bounded-search executor's assignment
    /// domain `Σ^{≤depth}`; subsumes the plan's `BoundedSearch
    /// { budget }` node operand (the executor runs the *minimum* of
    /// the two and reports SA404 when this capability clamps).
    pub search_depth: usize,
    /// What exhaustion does: degrade structurally or fail the run.
    pub degradation_policy: DegradationPolicy,
}

impl Budget {
    /// The all-unlimited capability (the back-compat default for plans
    /// whose certificate is zero — interpreter strategies build no
    /// automata).
    pub fn unlimited() -> Budget {
        Budget {
            states: UNLIMITED,
            bytes: UNLIMITED,
            wall_time_ms: UNLIMITED,
            search_depth: usize::MAX,
            degradation_policy: DegradationPolicy::Degrade,
        }
    }

    /// Seeds a budget from resource certificates: the planlint
    /// root certificate joined with the admission classifier's formula
    /// certificate (both are sound upper bounds, so the seeded budget
    /// admits the certified run exactly — degradation only fires when
    /// a caller *narrows* the capability). A zero joined bound means
    /// the strategy builds no automata; that dimension is unlimited.
    pub fn seeded(plan_cert: &ResourceCert, admission_cert: &ResourceCert, depth: usize) -> Budget {
        let dim = |a: u64, b: u64| match a.max(b) {
            0 => UNLIMITED,
            hi => hi,
        };
        Budget {
            states: dim(plan_cert.states.hi, admission_cert.states.hi),
            bytes: dim(plan_cert.bytes.hi, admission_cert.bytes.hi),
            wall_time_ms: UNLIMITED,
            search_depth: depth,
            degradation_policy: DegradationPolicy::Degrade,
        }
    }

    /// Switches the exhaustion policy.
    pub fn with_policy(mut self, policy: DegradationPolicy) -> Budget {
        self.degradation_policy = policy;
        self
    }

    /// Whether this budget admits a certified demand in full.
    pub fn admits(&self, demand: &ResourceCert) -> bool {
        demand.states.hi <= self.states && demand.bytes.hi <= self.bytes
    }

    /// The sub-budget a parent hands a child with certified demand
    /// `demand`: the child receives what its certificate asks for,
    /// clamped to what the parent itself holds (a child can never be
    /// handed more capability than its parent has). Depth, wall-time
    /// and policy are inherited — they are per-run, not per-node.
    pub fn child_for(&self, demand: &ResourceCert) -> Budget {
        Budget {
            states: self.states.min(demand.states.hi.max(1)),
            bytes: self.bytes.min(demand.bytes.hi.max(1)),
            ..*self
        }
    }

    /// Splits the states/bytes dimensions evenly across `n` children
    /// (unlimited dimensions stay unlimited). Used when children carry
    /// no certificates of their own to clamp against.
    pub fn split(&self, n: usize) -> Vec<Budget> {
        let n = n.max(1);
        let share = |dim: u64| {
            if dim == UNLIMITED {
                UNLIMITED
            } else {
                dim / n as u64
            }
        };
        vec![
            Budget {
                states: share(self.states),
                bytes: share(self.bytes),
                ..*self
            };
            n
        ]
    }

    /// One-line rendering for EXPLAIN (`∞` for unlimited dimensions).
    pub fn summary(&self) -> String {
        let dim = |v: u64| {
            if v == UNLIMITED {
                "∞".to_string()
            } else {
                fmt_bound(v)
            }
        };
        let depth = if self.search_depth == usize::MAX {
            "∞".to_string()
        } else {
            self.search_depth.to_string()
        };
        format!(
            "states ≤{}, bytes ≤{}, depth ≤{}, wall ≤{}ms, policy {}",
            dim(self.states),
            dim(self.bytes),
            depth,
            dim(self.wall_time_ms),
            self.degradation_policy.name()
        )
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// One row of the per-node budget ledger: which capability a node was
/// handed, what its certificate demanded, and whether the hand-down
/// covered the demand. Recorded for *every* plan node — the ledger is
/// the proof that no executor ran against an ambient limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Path from the root, `root` / `root/0/1` (child indices).
    pub node: String,
    /// The node's operator name.
    pub op: String,
    pub handed_states: u64,
    pub handed_bytes: u64,
    pub demand_states: u64,
    pub demand_bytes: u64,
    /// Whether the handed budget admits the certified demand.
    pub within: bool,
}

impl LedgerEntry {
    pub fn render(&self) -> String {
        let dim = |v: u64| {
            if v == UNLIMITED {
                "∞".to_string()
            } else {
                v.to_string()
            }
        };
        format!(
            "{} {}: handed states {} bytes {}, demand states {} bytes {} — {}",
            self.node,
            self.op,
            dim(self.handed_states),
            dim(self.handed_bytes),
            self.demand_states,
            self.demand_bytes,
            if self.within { "within" } else { "exhausted" }
        )
    }
}

/// The per-run budget ledger: one [`LedgerEntry`] per plan node, in
/// pre-order (parents before children), plus a charge account for
/// post-execution actuals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BudgetLedger {
    pub entries: Vec<LedgerEntry>,
}

impl BudgetLedger {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether every node's handed budget covered its demand.
    pub fn all_within(&self) -> bool {
        self.entries.iter().all(|e| e.within)
    }
}

/// A charge account over one [`Budget`]: actuals are debited as they
/// are observed, credits (returned capability) are bounded by what was
/// charged. Follows the cache's `checked_sub` + `debug_assert`
/// accounting idiom: underflow is an accounting bug in debug builds
/// and saturates (never wraps) in release builds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetAccount {
    remaining_states: u64,
    remaining_bytes: u64,
    charged_states: u64,
    charged_bytes: u64,
}

impl BudgetAccount {
    pub fn new(budget: &Budget) -> BudgetAccount {
        BudgetAccount {
            remaining_states: budget.states,
            remaining_bytes: budget.bytes,
            charged_states: 0,
            charged_bytes: 0,
        }
    }

    pub fn remaining_states(&self) -> u64 {
        self.remaining_states
    }

    pub fn remaining_bytes(&self) -> u64 {
        self.remaining_bytes
    }

    /// Debits observed states; `false` means the account could not
    /// cover the charge (the remainder is drained to zero, and the
    /// caller must surface an SA400 — never swallow the shortfall).
    pub fn charge_states(&mut self, amount: u64) -> bool {
        Self::debit(&mut self.remaining_states, &mut self.charged_states, amount)
    }

    /// Debits observed bytes (same contract as [`Self::charge_states`]).
    pub fn charge_bytes(&mut self, amount: u64) -> bool {
        Self::debit(&mut self.remaining_bytes, &mut self.charged_bytes, amount)
    }

    /// Returns previously charged states (a child handed capability
    /// back, e.g. a minimized automaton freed early). Crediting more
    /// than was charged is an accounting underflow: `debug_assert` in
    /// debug builds, clamped to the charged total in release builds.
    pub fn give_back_states(&mut self, amount: u64) {
        Self::credit(
            &mut self.remaining_states,
            &mut self.charged_states,
            amount,
            "states",
        );
    }

    /// Returns previously charged bytes (same contract as
    /// [`Self::give_back_states`]).
    pub fn give_back_bytes(&mut self, amount: u64) {
        Self::credit(
            &mut self.remaining_bytes,
            &mut self.charged_bytes,
            amount,
            "bytes",
        );
    }

    fn debit(remaining: &mut u64, charged: &mut u64, amount: u64) -> bool {
        if *remaining == UNLIMITED {
            return true;
        }
        match remaining.checked_sub(amount) {
            Some(rest) => {
                *remaining = rest;
                *charged = charged.saturating_add(amount);
                true
            }
            None => {
                // Drain rather than wrap; the caller reports the
                // shortfall (SA400), so nothing is silent.
                *charged = charged.saturating_add(*remaining);
                *remaining = 0;
                false
            }
        }
    }

    fn credit(remaining: &mut u64, charged: &mut u64, amount: u64, what: &str) {
        let rest = charged.checked_sub(amount);
        debug_assert!(
            rest.is_some(),
            "budget accounting underflow: {charged} {what} charged, crediting {amount}",
        );
        let credited = amount.min(*charged);
        *charged = rest.unwrap_or(0);
        if *remaining != UNLIMITED {
            *remaining = remaining.saturating_add(credited);
        }
    }
}

/// A structural degradation event: which SA4xx fired, at which plan
/// node, and why. Carried in the `ExecReport` — degradation is part of
/// the run's observable result, never silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    pub code: Code,
    /// Ledger-style node path (`root`, `root/0`, ...).
    pub node: String,
    pub detail: String,
}

impl Degradation {
    pub fn new(code: Code, node: impl Into<String>, detail: impl Into<String>) -> Degradation {
        Degradation {
            code,
            node: node.into(),
            detail: detail.into(),
        }
    }

    /// Stable one-line rendering, `SA402 at root: ...`.
    pub fn render(&self) -> String {
        format!("{} at {}: {}", self.code.as_str(), self.node, self.detail)
    }
}

/// The trustworthiness of a governed run's answer — the PR 2
/// `Validated`/`Refuted`/`Unknown` verdict shape adapted to execution.
/// (`strcalc-verify`'s own `Verdict` lives above this crate, so the
/// shape is mirrored here rather than imported.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecVerdict {
    /// The run completed as planned within its budget; the answer has
    /// the strategy's full semantics.
    Exact,
    /// The run degraded to a bounded evaluation (collapse domain or a
    /// clamped search depth): the answer is trustworthy only over the
    /// bounded domain and is reported as such, never as exact.
    Bounded { reason: String },
    /// The run could not produce a trustworthy answer within budget.
    Unknown { reason: String },
}

impl ExecVerdict {
    pub fn is_exact(&self) -> bool {
        matches!(self, ExecVerdict::Exact)
    }

    /// Stable rendering: `exact`, `bounded (...)` or `unknown (...)`.
    pub fn render(&self) -> String {
        match self {
            ExecVerdict::Exact => "exact".to_string(),
            ExecVerdict::Bounded { reason } => format!("bounded ({reason})"),
            ExecVerdict::Unknown { reason } => format!("unknown ({reason})"),
        }
    }
}

/// One cache interaction during execution, in order: the automaton
/// compile or a dense-table fetch, and whether the shared cache served
/// it. The sequence is part of the deterministic trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEvent {
    /// What kind of interaction this was.
    pub kind: CacheEventKind,
    /// `automaton` for the compiled artifact, `dense:<col>` for a
    /// dense filter table.
    pub label: String,
    pub hit: bool,
}

impl CacheEvent {
    /// A compile/fetch lookup event.
    pub fn lookup(label: impl Into<String>, hit: bool) -> CacheEvent {
        CacheEvent {
            kind: CacheEventKind::Lookup,
            label: label.into(),
            hit,
        }
    }

    /// A budget-aware eviction triggered by a shared-ledger
    /// reservation shortfall (SA430).
    pub fn reservation_eviction(label: impl Into<String>) -> CacheEvent {
        CacheEvent {
            kind: CacheEventKind::ReservationEviction,
            label: label.into(),
            hit: false,
        }
    }
}

/// The kind of a [`CacheEvent`]: an ordinary lookup, or an eviction
/// the admission ledger forced to satisfy a reservation (the typed
/// event satellite of the cross-query admission work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEventKind {
    /// A compile or dense-table fetch through the cache.
    Lookup,
    /// Cold entries evicted to cover a `SharedLedger` byte shortfall.
    ReservationEviction,
}

impl CacheEventKind {
    /// Stable name used in traces and EXPLAIN JSON.
    pub fn name(self) -> &'static str {
        match self {
            CacheEventKind::Lookup => "lookup",
            CacheEventKind::ReservationEviction => "reservation-evict",
        }
    }

    /// Parses a stable name back (trace deserialization).
    pub fn parse(s: &str) -> Option<CacheEventKind> {
        match s {
            "lookup" => Some(CacheEventKind::Lookup),
            "reservation-evict" => Some(CacheEventKind::ReservationEviction),
            _ => None,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use strcalc_analyze::planlint::Interval;

    fn cert(states: u64, bytes: u64) -> ResourceCert {
        ResourceCert {
            states: Interval { lo: 1, hi: states },
            bytes: Interval { lo: 0, hi: bytes },
        }
    }

    #[test]
    fn seeded_budget_admits_its_own_certificates() {
        let plan_cert = cert(4096, 1 << 22);
        let adm = cert(8192, 1 << 20);
        let b = Budget::seeded(&plan_cert, &adm, 4);
        assert!(b.admits(&plan_cert));
        assert!(b.admits(&adm));
        assert_eq!(b.states, 8192);
        assert_eq!(b.search_depth, 4);
    }

    #[test]
    fn zero_certificate_seeds_unlimited_dimensions() {
        let b = Budget::seeded(&ResourceCert::ZERO, &ResourceCert::ZERO, 4);
        assert_eq!(b.states, UNLIMITED);
        assert_eq!(b.bytes, UNLIMITED);
        assert!(b.admits(&cert(u64::MAX, u64::MAX)));
    }

    #[test]
    fn child_budget_is_clamped_by_the_parent() {
        let parent = Budget {
            states: 100,
            bytes: 1000,
            ..Budget::unlimited()
        };
        let child = parent.child_for(&cert(40, 400));
        assert_eq!((child.states, child.bytes), (40, 400));
        let greedy = parent.child_for(&cert(1_000_000, 1_000_000));
        assert_eq!((greedy.states, greedy.bytes), (100, 1000));
    }

    #[test]
    fn split_shares_evenly_and_keeps_unlimited() {
        let b = Budget {
            states: 90,
            bytes: UNLIMITED,
            ..Budget::unlimited()
        };
        let parts = b.split(3);
        assert_eq!(parts.len(), 3);
        for p in parts {
            assert_eq!(p.states, 30);
            assert_eq!(p.bytes, UNLIMITED);
        }
    }

    #[test]
    fn account_charges_and_refuses_overdraft() {
        let b = Budget {
            states: 10,
            bytes: 100,
            ..Budget::unlimited()
        };
        let mut acct = BudgetAccount::new(&b);
        assert!(acct.charge_states(6));
        assert!(acct.charge_bytes(40));
        assert_eq!(acct.remaining_states(), 4);
        // Overdraft drains to zero and reports failure — the caller
        // surfaces SA400, so no shortfall is silent.
        assert!(!acct.charge_states(5));
        assert_eq!(acct.remaining_states(), 0);
        // Unlimited dimensions never debit.
        let mut free = BudgetAccount::new(&Budget::unlimited());
        assert!(free.charge_states(u64::MAX));
        assert!(free.charge_states(u64::MAX));
    }

    #[test]
    fn split_and_return_round_trips_exactly() {
        let b = Budget {
            states: 100,
            bytes: 100,
            ..Budget::unlimited()
        };
        let mut acct = BudgetAccount::new(&b);
        assert!(acct.charge_states(70));
        acct.give_back_states(70);
        assert_eq!(acct.remaining_states(), 100);
        assert!(acct.charge_bytes(30));
        acct.give_back_bytes(30);
        assert_eq!(acct.remaining_bytes(), 100);
    }

    /// Regression (panic-audit round 7): returning more capability
    /// than was charged is an accounting underflow — caught by the
    /// `debug_assert` in debug builds, exactly like the cache's byte
    /// accounting.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "budget accounting underflow")]
    fn returning_more_than_charged_is_an_accounting_bug() {
        let b = Budget {
            states: 100,
            bytes: 100,
            ..Budget::unlimited()
        };
        let mut acct = BudgetAccount::new(&b);
        assert!(acct.charge_states(10));
        acct.give_back_states(11);
    }

    #[test]
    fn verdicts_and_degradations_render_stably() {
        assert_eq!(ExecVerdict::Exact.render(), "exact");
        assert_eq!(
            ExecVerdict::Bounded {
                reason: "collapse domain".into()
            }
            .render(),
            "bounded (collapse domain)"
        );
        let d = Degradation::new(Code::DegradedDenseToSparse, "root", "tables over budget");
        assert_eq!(d.render(), "SA402 at root: tables over budget");
    }

    #[test]
    fn summary_renders_unlimited_as_infinity() {
        let s = Budget::unlimited().summary();
        assert!(s.contains("states ≤∞"));
        assert!(s.contains("policy degrade"));
        let t = Budget {
            states: 4096,
            ..Budget::unlimited()
        }
        .summary();
        assert!(t.contains("states ≤4096"));
    }
}
