//! Restricted-quantifier collapse (Theorems 1, 2 and 6), verified and
//! applied.
//!
//! The theorems say every `RC(M)` formula is *equivalent to* one using
//! only restricted quantifiers (`∃x ∈ dom↓` for `S`-like structures,
//! `∃|x| ≤ adom` for `S_len`). The equivalence is witnessed by a
//! rewritten formula; the rewriting in the paper goes through
//! Ehrenfeucht–Fraïssé arguments and quantifier elimination. Here we
//! provide:
//!
//! * [`restrict_quantifiers`] — the *syntactic* restriction: replace each
//!   unrestricted quantifier by its restricted counterpart (per the
//!   query's calculus). This is **not** semantics-preserving for
//!   arbitrary formulas (that is exactly the content of the collapse
//!   theorems: the rewritten formula differs in general) — but it *is*
//!   the normal form the theorems target, and
//! * [`collapse_holds_on`] — the empirical check: the restricted version
//!   agrees with the exact semantics on a given database. The collapse
//!   theorems predict a rewriting exists; for the natural queries in the
//!   corpus the *naive* restriction already agrees, and the test suite
//!   plus benchmarks chart where it does.
//!
//! The practical payoff of the normal form: once all quantifiers are
//! active-domain-restricted, the query translates to the algebra
//! ([`crate::translate::adom_calculus_to_algebra`]) — the bridge from
//! Theorem 1/2 to Theorem 4.

use strcalc_logic::{Formula, Restrict};

use crate::engine::AutomataEngine;
use crate::plan::{Planner, Strategy};
use crate::query::{Calculus, CoreError, Query};
use strcalc_relational::Database;

/// The restriction kind the collapse theorems use for each calculus:
/// prefix-restricted for `S`/`S_left`/`S_reg` (Proposition 2 / Theorem 6),
/// length-restricted for `S_len` (Theorem 2).
pub fn natural_restriction(calculus: Calculus) -> Restrict {
    match calculus {
        Calculus::S | Calculus::SLeft | Calculus::SReg => Restrict::PrefixDom,
        Calculus::SLen => Restrict::LengthDom,
    }
}

/// Replaces every unrestricted quantifier with the calculus's natural
/// restricted quantifier. Purely syntactic; see the module docs for what
/// this does and does not preserve.
pub fn restrict_quantifiers(f: &Formula, r: Restrict) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) => f.clone(),
        Formula::Not(g) => restrict_quantifiers(g, r).not(),
        Formula::And(a, b) => restrict_quantifiers(a, r).and(restrict_quantifiers(b, r)),
        Formula::Or(a, b) => restrict_quantifiers(a, r).or(restrict_quantifiers(b, r)),
        Formula::Implies(a, b) => restrict_quantifiers(a, r).implies(restrict_quantifiers(b, r)),
        Formula::Iff(a, b) => restrict_quantifiers(a, r).iff(restrict_quantifiers(b, r)),
        Formula::Exists(v, g) => Formula::exists_r(r, v.clone(), restrict_quantifiers(g, r)),
        Formula::Forall(v, g) => Formula::forall_r(r, v.clone(), restrict_quantifiers(g, r)),
        Formula::ExistsR(r0, v, g) => Formula::exists_r(*r0, v.clone(), restrict_quantifiers(g, r)),
        Formula::ForallR(r0, v, g) => Formula::forall_r(*r0, v.clone(), restrict_quantifiers(g, r)),
    }
}

/// The query with its quantifiers naively restricted (the collapse normal
/// form's *shape*).
pub fn restricted_query(q: &Query) -> Result<Query, CoreError> {
    let r = natural_restriction(q.calculus);
    Query::new(
        q.calculus,
        q.alphabet.clone(),
        q.head.clone(),
        restrict_quantifiers(&q.formula, r),
    )
}

/// Checks whether the naive restriction agrees with the exact semantics
/// of `q` on `db` (Boolean queries only). Returns `(exact, restricted)`.
pub fn collapse_holds_on(
    engine: &AutomataEngine,
    q: &Query,
    db: &Database,
) -> Result<(bool, bool), CoreError> {
    if !q.is_boolean() {
        return Err(CoreError::Unsupported(
            "collapse_holds_on compares Boolean queries".into(),
        ));
    }
    let exact = engine.eval_bool(q, db)?;
    let restricted = engine.eval_bool(&restricted_query(q)?, db)?;
    Ok((exact, restricted))
}

/// Cross-engine collapse verification: the exact engine (quantifiers over
/// the infinite `Σ*`) against the enumeration engine (quantifiers over
/// the finite collapse domain with slack). Agreement across a corpus is
/// the empirical face of Theorems 1/2/6; the test suite and the
/// `fig2_matrix` bench run this.
pub fn engines_agree_on(q: &Query, db: &Database, slack: usize) -> Result<bool, CoreError> {
    let exact = Planner::new().force(Strategy::Automata).plan(q)?;
    let baseline = Planner::new()
        .force(Strategy::ActiveDomainEnum)
        .with_slack(slack)
        .plan(q)?;
    if q.is_boolean() {
        Ok(exact.execute_bool(db)?.0 == baseline.execute_bool(db)?.0)
    } else {
        match exact.execute(db)?.0 {
            crate::query::EvalOutput::Finite(rel) => match baseline.execute(db)?.0 {
                crate::query::EvalOutput::Finite(base) => Ok(rel == base),
                crate::query::EvalOutput::Infinite { .. } => Ok(false),
            },
            crate::query::EvalOutput::Infinite { .. } => Ok(true), // baseline N/A
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strcalc_alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_unary_parsed(&ab(), "U", &["ab", "ba", "bab"])
            .unwrap();
        db
    }

    fn q(calc: Calculus, src: &str) -> Query {
        Query::parse(calc, ab(), vec![], src).unwrap()
    }

    #[test]
    fn restriction_is_syntactic() {
        let f = strcalc_logic::parse_formula(&ab(), "exists y. forall z. (y <= z)").unwrap();
        let g = restrict_quantifiers(&f, Restrict::PrefixDom);
        let mut restricted = 0;
        g.visit(&mut |sub| {
            if matches!(sub, Formula::ExistsR(..) | Formula::ForallR(..)) {
                restricted += 1;
            }
        });
        assert_eq!(restricted, 2);
        assert_eq!(g.num_quantifiers(), 2);
    }

    #[test]
    fn collapse_agrees_on_natural_queries() {
        let engine = AutomataEngine::new();
        // Queries whose quantified witnesses live in the restricted
        // domains — the shape the collapse theorems produce.
        let cases = [
            (Calculus::S, "exists x. (U(x) & last(x, 'b'))"),
            (
                Calculus::S,
                "forall x. (U(x) -> exists y. (y <= x & last(y, 'b')))",
            ),
            (
                Calculus::SLen,
                "exists x. exists y. (U(x) & U(y) & el(x, y) & !(x = y))",
            ),
            (Calculus::SReg, "exists x. (U(x) & in(x, /(ba)*b?/))"),
        ];
        for (calc, src) in cases {
            let query = q(calc, src);
            let (exact, restricted) = collapse_holds_on(&engine, &query, &db()).unwrap();
            assert_eq!(exact, restricted, "collapse mismatch on {src}");
        }
    }

    #[test]
    fn cross_engine_collapse() {
        let cases = [
            q(Calculus::S, "exists x. (U(x) & first(x, 'b'))"),
            q(
                Calculus::SLen,
                "exists x. (U(x) & exists y. (el(x,y) & !(x=y) & U(y)))",
            ),
        ];
        for query in cases {
            assert!(engines_agree_on(&query, &db(), 2).unwrap());
        }
    }

    #[test]
    fn natural_restrictions() {
        assert_eq!(natural_restriction(Calculus::S), Restrict::PrefixDom);
        assert_eq!(natural_restriction(Calculus::SLeft), Restrict::PrefixDom);
        assert_eq!(natural_restriction(Calculus::SReg), Restrict::PrefixDom);
        assert_eq!(natural_restriction(Calculus::SLen), Restrict::LengthDom);
    }
}
