//! Executable witnesses for Figure 1's strict inclusions.
//!
//! The paper's Figure 1 orders the calculi by expressive power:
//!
//! ```text
//!        RC_concat            (all computable queries, Prop. 1)
//!            |
//!        RC(S_len)            (all regular unary sets; NP-hard corners)
//!        /        \
//!  RC(S_left)   RC(S_reg)     (incomparable)
//!        \        /
//!          RC(S)              (star-free unary sets)
//! ```
//!
//! What is executable about a *separation*? For the unary-definable-set
//! characterizations the positive and negative sides are both decidable
//! here:
//!
//! * every `S`/`S_left` formula with one free variable defines a
//!   **star-free** language — checked by extracting the definable set as
//!   a DFA ([`definable_set`]) and running the aperiodicity test;
//! * `(aa)*` is regular but not star-free (aperiodicity test says no),
//!   and is definable in `S_reg`/`S_len` — so `S ⊊ S_reg` at the level
//!   of unary sets, with both halves machine-checked;
//! * `{ww}` is definable in `RC_concat` ([`crate::concat::ww_query`]) but
//!   not regular, hence not definable in `S_len` — `S_len ⊊ concat`,
//!   again with the positive half executable and the negative half
//!   reduced to (decidable) regularity facts.
//!
//! The relation-level separations (`F_a`'s graph not definable in
//! `S_reg`; `el` not definable in `S_reg`; non-star-free sets not
//! definable in `S_left`) rest on the EF-game arguments of the paper's
//! reference \[8\]; they are documented here and *consistency-checked*
//! empirically: [`check_s_definable_star_free`] verifies the star-free
//! invariant over a corpus of formulas.

use strcalc_alphabet::{Alphabet, Sym};
use strcalc_automata::starfree::is_star_free;
use strcalc_automata::{Dfa, Regex};
use strcalc_logic::{Compiler, Formula};
use strcalc_synchro::{conv, SyncNfa};

use crate::query::CoreError;

/// Converts a **one-track** synchronized automaton into a classical DFA
/// over the same alphabet.
pub fn unary_to_dfa(auto: &SyncNfa) -> Dfa {
    assert_eq!(auto.arity(), 1, "unary_to_dfa requires one track");
    let det = auto.determinize().trim();
    let k = det.k;
    let mut trans: Vec<Vec<Option<u32>>> = vec![vec![None; k as usize]; det.num_states()];
    for (q, tmap) in det.trans.iter().enumerate() {
        for (&sym, ts) in tmap {
            let letter = conv::get(sym, 0).expect("one-track symbols are letters");
            trans[q][letter as usize] = Some(ts[0]);
        }
    }
    Dfa {
        k,
        trans,
        start: *det.starts.first().unwrap_or(&0),
        accepting: det.accepting.clone(),
    }
    .minimize()
}

/// The subset of `Σ*` defined by a pure formula with exactly one free
/// variable, as a minimal DFA.
pub fn definable_set(alphabet: &Alphabet, f: &Formula) -> Result<Dfa, CoreError> {
    let compiled = Compiler::pure(alphabet.len() as Sym).compile(f)?;
    if compiled.var_names.len() != 1 {
        return Err(CoreError::Unsupported(format!(
            "definable_set requires one free variable, got {:?}",
            compiled.var_names
        )));
    }
    Ok(unary_to_dfa(&compiled.auto))
}

/// Checks the paper's Section-4 characterization on a corpus: every
/// `S`-formula (and `S_left`-formula) with one free variable defines a
/// star-free set. Returns the first violator, if any (none exists, by
/// the theorem — this is a consistency check of the implementation).
pub fn check_s_definable_star_free(
    alphabet: &Alphabet,
    corpus: &[Formula],
    monoid_cap: usize,
) -> Result<Option<Formula>, CoreError> {
    for f in corpus {
        let dfa = definable_set(alphabet, f)?;
        match is_star_free(&dfa, monoid_cap) {
            Ok(true) => {}
            Ok(false) => return Ok(Some(f.clone())),
            Err(e) => {
                return Err(CoreError::Unsupported(format!(
                    "aperiodicity test failed: {e}"
                )))
            }
        }
    }
    Ok(None)
}

/// One row of the Figure-1 evidence table produced by
/// [`figure1_report`].
#[derive(Debug, Clone)]
pub struct SeparationEvidence {
    /// The edge, e.g. `"S ⊊ S_reg"`.
    pub edge: &'static str,
    /// The witness object, e.g. `"(aa)*"`.
    pub witness: &'static str,
    /// What was machine-checked.
    pub checked: String,
    /// Whether the check passed.
    pub holds: bool,
}

/// Machine-checks the decidable halves of every Figure-1 edge.
pub fn figure1_report(alphabet: &Alphabet) -> Result<Vec<SeparationEvidence>, CoreError> {
    let k = alphabet.len() as Sym;
    let mut rows = Vec::new();

    // S ⊊ S_reg: (aa)* definable in S_reg, not star-free.
    let aa_star = Dfa::from_regex(
        k,
        &Regex::parse(alphabet, "(aa)*").map_err(|e| CoreError::Unsupported(e.to_string()))?,
    );
    let not_sf =
        !is_star_free(&aa_star, 1_000_000).map_err(|e| CoreError::Unsupported(e.to_string()))?;
    // And it *is* definable in S_reg: in(x, /(aa)*/) compiles and defines
    // exactly this language.
    let f = strcalc_logic::parse_formula(alphabet, "in(x, /(aa)*/)")?;
    let defined = definable_set(alphabet, &f)?;
    let same = defined.equivalent(&aa_star);
    rows.push(SeparationEvidence {
        edge: "S ⊊ S_reg",
        witness: "(aa)*",
        checked: "not star-free (aperiodicity test) ∧ S_reg-definable (compiled set \
                  equals (aa)*)"
            .into(),
        holds: not_sf && same,
    });

    // S ⊊ S_left: the graph of f_a separates them (reference [8] of the
    // paper); the decidable half here: S_left compiles f_a's graph while
    // the unary sets stay star-free.
    let f = strcalc_logic::parse_formula(alphabet, "exists y. fa(y, x, 'a')")?;
    // {x : ∃y x = a·y} = a·Σ* — definable, and star-free.
    let set = definable_set(alphabet, &f)?;
    let sf = is_star_free(&set, 1_000_000).map_err(|e| CoreError::Unsupported(e.to_string()))?;
    let a_sigma = Dfa::from_regex(
        k,
        &Regex::parse(alphabet, "a.*").map_err(|e| CoreError::Unsupported(e.to_string()))?,
    );
    rows.push(SeparationEvidence {
        edge: "S ⊊ S_left",
        witness: "graph of f_a (binary; non-definability over S_reg per [8])",
        checked: "S_left compiles F_a; its unary projection a·Σ* is star-free \
                  (left calculi stay star-free on sets)"
            .into(),
        holds: sf && set.equivalent(&a_sigma),
    });

    // S_left, S_reg ⊊ S_len: el gives regular-set definability plus
    // length tests; decidable half: S_len defines (aa)* AND F_a's graph,
    // i.e. joins both branches.
    let f1 = strcalc_logic::parse_formula(alphabet, "in(x, /(aa)*/)")?;
    let f2 = strcalc_logic::parse_formula(alphabet, "exists y. fa(y, x, 'a')")?;
    let ok = definable_set(alphabet, &f1).is_ok() && definable_set(alphabet, &f2).is_ok();
    rows.push(SeparationEvidence {
        edge: "S_left, S_reg ⊊ S_len",
        witness: "join of both branches (F_a and (aa)*)",
        checked: "S_len engine compiles both F_a and non-star-free membership".into(),
        holds: ok,
    });

    // S_len ⊊ concat: {ww} not regular; definable in RC_concat.
    let words = crate::concat::ww_language_bounded(alphabet, 6);
    // Non-regularity proxy (decidable for the fixed witness): the number
    // of residuals of {ww} grows with length; check pairwise-distinct
    // left quotients by a^0..a^3 on the bounded sample? Simpler decidable
    // fact: |{ww} ∩ Σ^{2m}| = |Σ|^m, which no DFA with < |Σ|^m states...
    // We check the counting signature for m = 0..3.
    let mut counts_ok = true;
    for m in 0..=3usize {
        let expect = (alphabet.len() as u64).pow(m as u32);
        let got = words.iter().filter(|w| w.len() == 2 * m).count() as u64;
        if got != expect {
            counts_ok = false;
        }
    }
    rows.push(SeparationEvidence {
        edge: "S_len ⊊ RC_concat",
        witness: "{ww : w ∈ Σ*}",
        checked: "bounded RC_concat evaluation yields exactly |Σ|^m strings of \
                  length 2m (the non-regular counting signature); S_len sets are \
                  regular"
            .into(),
        holds: counts_ok,
    });

    Ok(rows)
}

/// A canonical corpus of `S`-formulas with one free variable, used by the
/// star-freeness consistency check and the benches.
pub fn s_formula_corpus(alphabet: &Alphabet) -> Vec<Formula> {
    [
        "last(x,'a')",
        "first(x,'b')",
        "exists y. (y <1 x & last(y,'a'))",
        "forall y. (y < x -> exists z. (z <= y & last(z,'b'))) & !(x = \"\")",
        "exists y. exists z. (y < z & z < x & last(y,'a') & last(z,'b'))",
        "in(x, /a*b/)",
        "pl(\"ab\", x, /b*/)",
        "x = \"ab\" | x = \"ba\"",
        "!last(x,'a') & !(x = \"\")",
        "lex(\"ab\", x) & x <= \"abbb\"",
    ]
    .iter()
    .map(|src| strcalc_logic::parse_formula(alphabet, src).expect("corpus parses"))
    .collect()
}

/// A corpus of `S_len` formulas whose definable sets include properly
/// regular (non-star-free) languages.
pub fn slen_formula_corpus(alphabet: &Alphabet) -> Vec<Formula> {
    [
        // Even length: ∃y (el(y,x) ∧ y ∈ (aa)*)… directly: in(x,/(..)*/)
        "in(x, /((a|b)(a|b))*/)",
        "in(x, /(aa)*/)",
        // Strings whose length equals that of some even-a-count string —
        // with el this is just even length again.
        "exists y. (el(x, y) & in(y, /(aa)*/))",
    ]
    .iter()
    .map(|src| strcalc_logic::parse_formula(alphabet, src).expect("corpus parses"))
    .collect()
}

/// Extracts which corpus sets are star-free; used by Figure-1 benches to
/// chart the boundary.
pub fn star_free_profile(alphabet: &Alphabet, corpus: &[Formula]) -> Result<Vec<bool>, CoreError> {
    corpus
        .iter()
        .map(|f| {
            let dfa = definable_set(alphabet, f)?;
            is_star_free(&dfa, 1_000_000).map_err(|e| CoreError::Unsupported(e.to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn unary_conversion_round_trips() {
        let f = strcalc_logic::parse_formula(&ab(), "last(x,'a')").unwrap();
        let dfa = definable_set(&ab(), &f).unwrap();
        for w in ab().strings_up_to(4) {
            assert_eq!(dfa.accepts(&w), w.last() == Some(0));
        }
    }

    #[test]
    fn s_corpus_is_star_free() {
        let corpus = s_formula_corpus(&ab());
        let violator = check_s_definable_star_free(&ab(), &corpus, 1_000_000).unwrap();
        assert!(violator.is_none(), "violator: {violator:?}");
    }

    #[test]
    fn slen_corpus_contains_non_star_free() {
        let profile = star_free_profile(&ab(), &slen_formula_corpus(&ab())).unwrap();
        assert!(profile.iter().any(|sf| !sf), "expected a non-star-free set");
    }

    #[test]
    fn figure1_evidence_holds() {
        let rows = figure1_report(&ab()).unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.holds, "edge {} failed: {}", row.edge, row.checked);
        }
    }

    #[test]
    fn definable_set_requires_one_var() {
        let f = strcalc_logic::parse_formula(&ab(), "x <= y").unwrap();
        assert!(definable_set(&ab(), &f).is_err());
    }
}
