//! Golden-file snapshot tests for `EXPLAIN` output on the Figure-2
//! probe queries (one per calculus). The rendering is part of the
//! stable surface: CI fails on drift. To regenerate after an
//! intentional change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p strcalc-core --test explain_snapshots
//! ```

use strcalc_alphabet::Alphabet;
use strcalc_core::{Calculus, Planner, Query};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/explain_fig2.txt");

/// The Figure-2 probe queries: one natural query per calculus.
fn fig2_matrix() -> Vec<(Calculus, &'static str)> {
    vec![
        (Calculus::S, "exists y. (U(y) & x <= y & last(x,'a'))"),
        (Calculus::SLeft, "exists y. (U(y) & fa(y, x, 'a'))"),
        (Calculus::SReg, "exists y. (U(y) & pl(x, y, /(ab)*/))"),
        (Calculus::SLen, "exists y. (U(y) & el(x, y) & last(x,'a'))"),
    ]
}

fn render_all() -> String {
    let planner = Planner::new();
    let mut out = String::new();
    for (calc, src) in fig2_matrix() {
        let q = Query::parse(calc, Alphabet::ab(), vec!["x".into()], src).expect("fig2 probe");
        let plan = planner.plan(&q).expect("fig2 probes always plan");
        out.push_str(&format!("=== {} ===\n", calc.name()));
        out.push_str(&plan.explain_text());
        out.push_str("--- json ---\n");
        out.push_str(&plan.explain_json());
        out.push_str("\n\n");
    }
    out
}

#[test]
fn explain_fig2_matches_golden() {
    let rendered = render_all();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "EXPLAIN output drifted from {GOLDEN}; if intentional, regenerate \
         with UPDATE_GOLDEN=1"
    );
}

#[test]
fn explain_json_is_single_line_and_balanced() {
    let planner = Planner::new();
    for (calc, src) in fig2_matrix() {
        let q = Query::parse(calc, Alphabet::ab(), vec!["x".into()], src).expect("fig2 probe");
        let json = planner.plan(&q).expect("plans").explain_json();
        assert!(!json.contains('\n'), "json is one line");
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "balanced braces in {json}");
    }
}
