//! End-to-end acceptance tests for the robustness layer: a real
//! wall-clock deadline cutting a dense scan mid-flight (and replaying
//! bit-for-bit from the recorded checkpoint), and cross-query
//! admission over a shared ledger.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use strcalc_alphabet::Alphabet;
use strcalc_core::budget::UNLIMITED;
use strcalc_core::cache::AutomatonCache;
use strcalc_core::{
    replay, AutomataEngine, Budget, Calculus, CoreError, ExecCx, ExecTrace, ExecVerdict, Planner,
    Query, ReserveRequest, SharedLedger, Strategy,
};
use strcalc_relational::Database;

/// A corpus large enough that a dense scan cannot finish inside a
/// 1 ms deadline in any build profile: 60k distinct length-17 strings
/// over {a, b} (several checkpoint batches of 4096 rows each).
fn big_db() -> Database {
    let strings: Vec<String> = (0..60_000u32)
        .map(|i| {
            (0..17)
                .map(|bit| if i >> bit & 1 == 1 { 'b' } else { 'a' })
                .collect()
        })
        .collect();
    let refs: Vec<&str> = strings.iter().map(String::as_str).collect();
    let mut db = Database::new();
    db.insert_unary_parsed(&Alphabet::ab(), "U", &refs).unwrap();
    db
}

fn dense_query() -> Query {
    Query::parse(
        Calculus::SReg,
        Alphabet::ab(),
        vec!["x".into()],
        "U(x) & in(x, /(aa)*/)",
    )
    .unwrap()
}

/// The headline acceptance criterion: a dense scan over a corpus that
/// exceeds a 1 ms deadline terminates at a batch checkpoint — not at
/// settlement — with an SA411 degradation carrying the rows-seen
/// watermark and a `Bounded` verdict, and the recorded run replays to
/// the identical degradation sequence under the frozen virtual clock.
#[test]
fn dense_scan_exceeding_a_real_deadline_truncates_at_a_checkpoint_and_replays() {
    let engine = AutomataEngine::new().with_cache(Arc::new(AutomatonCache::new()));
    let db = big_db();
    let plan = Planner::for_engine(&engine).plan(&dense_query()).unwrap();
    assert_eq!(plan.strategy, Strategy::DenseDfaScan);

    let tight = Budget {
        wall_time_ms: 1,
        ..Budget::unlimited()
    };
    let (out, report) = plan
        .execute_with_ctx(&db, &tight, &ExecCx::production())
        .expect("a degraded run still answers");

    // The deadline fired in flight, at a checkpoint the report names.
    let fired = report
        .faults
        .deadline_at_checkpoint
        .expect("60k rows cannot scan inside 1 ms");
    assert!(matches!(report.verdict, ExecVerdict::Bounded { .. }));
    let sa411 = report
        .degradations
        .iter()
        .find(|d| d.code.as_str() == "SA411")
        .expect("truncation is SA411-recorded");
    assert!(
        sa411.detail.contains(&format!("checkpoint {fired}")),
        "degradation names the fire checkpoint: {}",
        sa411.detail
    );
    assert!(
        sa411.detail.contains("scanned") && sa411.detail.contains("rows"),
        "degradation carries the rows-seen watermark: {}",
        sa411.detail
    );
    // The watermark is in whole checkpoint batches: the scan stopped
    // at a poll boundary, not wherever settlement found it.
    assert!(report.tuples_enumerated < 60_000, "the scan was cut short");

    // Replay: the recorded checkpoint re-arms over a frozen clock and
    // reproduces the same truncation, degradations, and answer.
    let trace = ExecTrace::record(&plan, &tight, &report, &db, &out).unwrap();
    let parsed = ExecTrace::parse(&trace.to_json()).unwrap();
    assert_eq!(parsed, trace, "the fault plan survives the JSON round trip");

    let replay_engine = AutomataEngine::new().with_cache(Arc::new(AutomatonCache::new()));
    let replayed = replay(&trace, &replay_engine, &db).unwrap();
    assert!(
        replayed.is_clean(),
        "deadline truncation must replay bit-for-bit: {:?}",
        replayed.diffs
    );
    assert_eq!(replayed.replayed.faults.deadline_at_checkpoint, Some(fired));
}

/// Cross-query admission: two governed runs sharing a one-slot ledger
/// over-subscribe it — while the first reservation is in flight the
/// second run is denied admission (exactly one admission), and once
/// the slot settles the denied run re-admits and answers exactly.
#[test]
fn over_subscribed_ledger_admits_exactly_one() {
    let ledger = Arc::new(SharedLedger::new(UNLIMITED, UNLIMITED, 1));

    // Run A holds the single run slot (a governed run mid-execution).
    let held = ledger
        .try_reserve(ReserveRequest {
            states: 0,
            bytes: 0,
        })
        .expect("an idle ledger admits");

    // Run B races against it from another thread and must be denied:
    // the slot dimension is exhausted and no eviction can mint slots.
    let (tx, rx) = mpsc::channel();
    let contender = {
        let ledger = Arc::clone(&ledger);
        thread::spawn(move || {
            let mut db = Database::new();
            db.insert_unary_parsed(&Alphabet::ab(), "R", &["", "a", "ab", "bab"])
                .unwrap();
            let q = Query::parse(
                Calculus::S,
                Alphabet::ab(),
                vec!["x".into()],
                "exists y. (R(y) & x <= y)",
            )
            .unwrap();
            let plan = Planner::new().plan(&q).unwrap();
            let cx = ExecCx::production().with_ledger(Arc::clone(&ledger));
            let denied = plan.execute_with_ctx(&db, &Budget::unlimited(), &cx);
            tx.send(()).unwrap();
            // After run A settles, the same run admits and is exact.
            let (out, report) = loop {
                match plan.execute_with_ctx(&db, &Budget::unlimited(), &cx) {
                    Ok(ok) => break ok,
                    Err(CoreError::AdmissionDenied { .. }) => thread::yield_now(),
                    Err(e) => panic!("unexpected error: {e:?}"),
                }
            };
            (denied, out, report)
        })
    };

    // Wait until run B has been refused, then settle run A.
    rx.recv().unwrap();
    drop(held);

    let (denied, out, report) = contender.join().expect("contender thread");
    assert!(
        matches!(denied, Err(CoreError::AdmissionDenied { .. })),
        "over-subscription is a typed rejection, got {denied:?}"
    );
    assert!(report.verdict.is_exact());
    assert!(report.degradations.is_empty());
    assert!(matches!(out, strcalc_core::EvalOutput::Finite(_)));

    // All three dimensions drained back to capacity.
    assert_eq!(ledger.available(), (UNLIMITED, UNLIMITED, 1));
}
