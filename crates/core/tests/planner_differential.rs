//! Differential property tests for the query planner: for random
//! formulas, the planner-routed executors agree with the legacy direct
//! calls they replaced — [`AutomataEngine::eval`], [`EnumEngine::eval`]
//! (same slack), and [`ConcatEvaluator::eval`] (same bound).

use proptest::prelude::*;
use strcalc_alphabet::Alphabet;
use strcalc_core::{
    AutomataEngine, Calculus, ConcatEvaluator, EnumEngine, EvalOutput, Planner, Query,
    Strategy as PlanStrategy,
};
use strcalc_logic::{Formula, Term};
use strcalc_relational::Database;

/// Random formulas with free variable `x`, over the unary relation `R`
/// and the S/S_len signature.
fn arb_formula() -> impl Strategy<Value = Formula> {
    let x = || Term::var("x");
    let y = || Term::var("y");
    let leaf = prop_oneof![
        Just(Formula::rel("R", vec![x()])),
        Just(Formula::rel("R", vec![y()])),
        Just(Formula::prefix(x(), y())),
        Just(Formula::prefix(y(), x())),
        Just(Formula::eq(x(), y())),
        Just(Formula::eq_len(x(), y())),
        Just(Formula::last_sym(x(), 0)),
        Just(Formula::last_sym(y(), 1)),
        Just(Formula::lex_leq(x(), y())),
        Just(Formula::True),
        Just(Formula::False),
    ];
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(Formula::not),
            inner.prop_map(|f| Formula::exists("y", f)),
        ]
    })
}

/// Random formulas in the concat fragment with free variable `x`: the
/// random body is conjoined with `∃z concat(x, x, z)`, which pins `x`
/// free and pushes the whole formula outside the synchro fragment.
fn arb_concat_formula() -> impl Strategy<Value = Formula> {
    arb_formula().prop_map(|f| {
        let closed = if f.free_vars().contains("y") {
            Formula::exists("y", f)
        } else {
            f
        };
        closed.and(Formula::exists(
            "z",
            Formula::concat_eq(Term::var("x"), Term::var("x"), Term::var("z")),
        ))
    })
}

fn db() -> Database {
    let mut db = Database::new();
    db.insert_unary_parsed(&Alphabet::ab(), "R", &["", "a", "ab", "bab"])
        .unwrap();
    db
}

/// Pin `x` free so the query head is stable regardless of what the
/// random formula mentions; quantify away a leftover free `y`.
fn query_of(f: Formula) -> Query {
    let pinned = f.and(Formula::eq(Term::var("x"), Term::var("x")));
    let closed = if pinned.free_vars().contains("y") {
        Formula::exists("y", pinned)
    } else {
        pinned
    };
    Query::new(Calculus::SLen, Alphabet::ab(), vec!["x".into()], closed).expect("head = free vars")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Automata strategy ≡ `AutomataEngine::eval`. With rewriting off
    // the compiled formula is identical, so outputs match exactly.
    #[test]
    fn planner_matches_direct_automata_eval(f in arb_formula()) {
        let q = query_of(f);
        let db = db();
        let direct = AutomataEngine::new().eval(&q, &db).expect("direct eval");
        let plan = Planner::new().with_rewrite(false).plan(&q).expect("plans");
        prop_assert_eq!(plan.strategy, PlanStrategy::Automata);
        let (routed, _) = plan.execute(&db).expect("routed eval");
        prop_assert_eq!(routed, direct);
    }

    // With the rewrite pass on (the default), outputs still agree —
    // finite relations exactly; infinite outputs up to sampling.
    #[test]
    fn rewrite_pass_preserves_semantics(f in arb_formula()) {
        let q = query_of(f);
        let db = db();
        let direct = AutomataEngine::new().eval(&q, &db).expect("direct eval");
        let (routed, _) = Planner::new()
            .plan(&q)
            .expect("plans")
            .execute(&db)
            .expect("routed eval");
        match (routed, direct) {
            (EvalOutput::Finite(a), EvalOutput::Finite(b)) => prop_assert_eq!(a, b),
            (EvalOutput::Infinite { .. }, EvalOutput::Infinite { .. }) => {}
            (a, b) => prop_assert!(false, "finiteness mismatch: {a:?} vs {b:?}"),
        }
    }

    // Forced enumeration strategy ≡ `EnumEngine::eval` with the same
    // slack.
    #[test]
    fn planner_matches_direct_enum_eval(f in arb_formula()) {
        let q = query_of(f);
        let db = db();
        let direct = EnumEngine::with_slack(2).eval(&q, &db).expect("direct enum");
        let plan = Planner::new()
            .force(PlanStrategy::ActiveDomainEnum)
            .with_slack(2)
            .with_rewrite(false)
            .plan(&q)
            .expect("plans");
        prop_assert_eq!(plan.strategy, PlanStrategy::ActiveDomainEnum);
        let (routed, report) = plan.execute(&db).expect("routed enum");
        prop_assert_eq!(routed, EvalOutput::Finite(direct));
        prop_assert!(report.domain_size > 0, "collapse domain contains ε at least");
    }

    // Concat fragment ≡ `ConcatEvaluator::eval` with the same bound.
    #[test]
    fn planner_matches_direct_bounded_search(f in arb_concat_formula()) {
        let db = db();
        let head = vec!["x".to_string()];
        let direct = ConcatEvaluator::new(Alphabet::ab(), 3)
            .eval(&f, &head, &db)
            .expect("direct bounded search");
        let plan = Planner::new()
            .with_bound(3)
            .with_rewrite(false)
            .plan_formula(&Alphabet::ab(), &head, &f)
            .expect("plans");
        prop_assert_eq!(plan.strategy, PlanStrategy::BoundedSearch);
        let (routed, _) = plan.execute(&db).expect("routed bounded search");
        prop_assert_eq!(routed, EvalOutput::Finite(direct));
    }

    // Boolean routing agrees across all three strategies.
    #[test]
    fn planner_matches_direct_bool_eval(f in arb_formula()) {
        let g = Formula::exists("x", query_of(f).formula.clone());
        let q = Query::new(Calculus::SLen, Alphabet::ab(), vec![], g).expect("sentence");
        let db = db();
        let direct = AutomataEngine::new().eval_bool(&q, &db).expect("direct");
        let (routed, _) = Planner::new()
            .with_rewrite(false)
            .plan(&q)
            .expect("plans")
            .execute_bool(&db)
            .expect("routed");
        prop_assert_eq!(routed, direct);
        let enum_direct = EnumEngine::with_slack(2).eval_bool(&q, &db).expect("enum");
        let (enum_routed, _) = Planner::new()
            .force(PlanStrategy::ActiveDomainEnum)
            .with_slack(2)
            .with_rewrite(false)
            .plan(&q)
            .expect("plans")
            .execute_bool(&db)
            .expect("routed enum");
        prop_assert_eq!(enum_routed, enum_direct);
    }
}
