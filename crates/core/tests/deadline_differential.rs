//! Differential property tests for in-flight deadlines and fault
//! injection.
//!
//! Three invariants across all strategies:
//!
//! 1. **Transparency:** an armed deadline that never fires changes
//!    nothing — the governed answer is byte-identical to the
//!    ungoverned one, the verdict is `Exact`, and no degradation is
//!    recorded. Polling is observation, not interference.
//! 2. **No silent truncation under expiry:** a run whose deadline
//!    fires either fails (`DegradationPolicy::Fail` →
//!    `CoreError::DeadlineExpired`) or reports a non-`Exact` verdict
//!    carrying at least one SA41x degradation with a checkpoint index
//!    and a work watermark. Never a quiet partial answer.
//! 3. **Deterministic replay:** a run recorded under an injected
//!    fault plan replays bit for bit — same degradations, same
//!    verdict, same output fingerprint — because every fault
//!    (including the deadline fire point) is a seed-addressed,
//!    checkpoint-indexed event, not a wall-clock accident.

use std::sync::Arc;

use proptest::prelude::*;
use strcalc_alphabet::Alphabet;
use strcalc_core::cache::AutomatonCache;
use strcalc_core::{
    replay, AutomataEngine, Budget, Calculus, CoreError, DegradationPolicy, ExecCx, ExecTrace,
    FaultPlan, Planner, Query,
};
use strcalc_logic::{Formula, Term};
use strcalc_relational::Database;

/// Random formulas with free variable `x` over the unary relation `R`
/// (same shape as the budget differential suite).
fn arb_formula() -> impl Strategy<Value = Formula> {
    let x = || Term::var("x");
    let y = || Term::var("y");
    let leaf = prop_oneof![
        Just(Formula::rel("R", vec![x()])),
        Just(Formula::rel("R", vec![y()])),
        Just(Formula::prefix(x(), y())),
        Just(Formula::prefix(y(), x())),
        Just(Formula::eq(x(), y())),
        Just(Formula::eq_len(x(), y())),
        Just(Formula::last_sym(x(), 0)),
        Just(Formula::last_sym(y(), 1)),
        Just(Formula::True),
    ];
    leaf.prop_recursive(2, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(Formula::not),
            inner.prop_map(|f| Formula::exists("y", f)),
        ]
    })
}

fn db() -> Database {
    let mut db = Database::new();
    db.insert_unary_parsed(&Alphabet::ab(), "R", &["", "a", "ab", "bab"])
        .unwrap();
    db
}

fn query_of(f: Formula) -> Query {
    let pinned = f.and(Formula::eq(Term::var("x"), Term::var("x")));
    let closed = if pinned.free_vars().contains("y") {
        Formula::exists("y", pinned)
    } else {
        pinned
    };
    Query::new(Calculus::SLen, Alphabet::ab(), vec!["x".into()], closed).expect("head = free vars")
}

/// A fault plan whose only event is a deadline firing at checkpoint
/// `n` (every strategy polls at least once, so `n = 1` always fires).
fn deadline_at(n: u64) -> FaultPlan {
    FaultPlan {
        deadline_at_checkpoint: Some(n),
        ..FaultPlan::none()
    }
}

fn is_sa41x(code: &str) -> bool {
    matches!(code, "SA411" | "SA412" | "SA413")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Invariant 1: an armed, finite, never-expiring deadline is
    // invisible — same answer, Exact verdict, empty degradation list.
    #[test]
    fn unfired_deadline_is_transparent(f in arb_formula()) {
        let q = query_of(f);
        let db = db();
        let plan = Planner::new().plan(&q).expect("plans");
        let (exact, _) = plan.execute(&db).expect("ungoverned");
        let roomy = Budget {
            wall_time_ms: 1_000_000, // finite → the deadline is armed
            ..Budget::unlimited()
        };
        let (governed, report) = plan
            .execute_with_ctx(&db, &roomy, &ExecCx::production())
            .expect("governed");
        prop_assert_eq!(governed, exact);
        prop_assert!(report.verdict.is_exact());
        prop_assert!(report.degradations.is_empty());
        prop_assert!(report.faults.deadline_at_checkpoint.is_none());
    }

    // Invariant 2 (degrade policy): a deadline firing at the very
    // first checkpoint yields a structural degradation — non-exact
    // verdict plus at least one SA41x event — never a quiet answer.
    #[test]
    fn expired_runs_degrade_structurally(f in arb_formula(), fire in 1u64..4) {
        let q = query_of(f);
        let db = db();
        let plan = Planner::new().plan(&q).expect("plans");
        let cx = ExecCx::production().with_faults(deadline_at(fire));
        match plan.execute_with_ctx(&db, &Budget::unlimited(), &cx) {
            Ok((_, report)) => {
                if report.faults.deadline_at_checkpoint.is_some() {
                    prop_assert!(!report.verdict.is_exact(),
                        "a deadline-cut run is never exact: {}", report.summary());
                    prop_assert!(
                        report.degradations.iter().any(|d| is_sa41x(d.code.as_str())),
                        "expiry must be SA41x-recorded: {:?}", report.degradations
                    );
                } else {
                    // The run finished before checkpoint `fire`; it
                    // must then be a clean exact run.
                    prop_assert!(report.verdict.is_exact());
                }
            }
            Err(e) => prop_assert!(false, "degrade policy never errors: {e:?}"),
        }
    }

    // Invariant 2 (fail policy): the same expiry under
    // `DegradationPolicy::Fail` is an error, not a degraded answer.
    #[test]
    fn expired_runs_fail_closed_under_fail_policy(f in arb_formula()) {
        let q = query_of(f);
        let db = db();
        let plan = Planner::new().plan(&q).expect("plans");
        let cx = ExecCx::production().with_faults(deadline_at(1));
        let strict = Budget::unlimited().with_policy(DegradationPolicy::Fail);
        match plan.execute_with_ctx(&db, &strict, &cx) {
            Err(CoreError::DeadlineExpired { checkpoint, .. }) => {
                prop_assert!(checkpoint >= 1);
            }
            Err(e) => prop_assert!(false, "wrong error: {e:?}"),
            Ok((_, report)) => prop_assert!(
                report.faults.deadline_at_checkpoint.is_none(),
                "an expired run may not answer under the fail policy"
            ),
        }
    }

    // Invariant 3: a fault-injected run replays to the identical
    // degradation sequence (and everything else — the diff is empty).
    #[test]
    fn fault_injected_runs_replay_identically(f in arb_formula(), seed in 0u64..1_000_000) {
        let q = query_of(f);
        let database = db();
        let faults = FaultPlan::from_seed(seed);
        // Record and replay under matching contexts: fresh engine and
        // cache on both sides, the same fault plan, a frozen clock.
        let engine = AutomataEngine::new().with_cache(Arc::new(AutomatonCache::new()));
        let plan = Planner::for_engine(&engine).plan(&q).expect("plans");
        let budget = Budget::unlimited();
        let cx = ExecCx::replay(faults);
        let trace = if plan.is_boolean() {
            let (value, report) = plan
                .execute_bool_with_ctx(&database, &budget, &cx)
                .expect("recorded bool run");
            ExecTrace::record_bool(&plan, &budget, &report, &database, value).expect("trace")
        } else {
            let (out, report) = plan
                .execute_with_ctx(&database, &budget, &cx)
                .expect("recorded run");
            ExecTrace::record(&plan, &budget, &report, &database, &out).expect("trace")
        };
        // The trace round-trips through JSON with its fault plan.
        let parsed = ExecTrace::parse(&trace.to_json()).expect("parses");
        prop_assert_eq!(&parsed, &trace);

        let replay_engine = AutomataEngine::new().with_cache(Arc::new(AutomatonCache::new()));
        let report = replay(&trace, &replay_engine, &database).expect("replay");
        // Everything the fault machinery owns must reproduce exactly.
        // (Pass traces are allowed to differ: the trace stores the
        // post-rewrite formula, so re-planning it is an identity
        // rewrite — a re-planning artifact, not nondeterminism.)
        prop_assert!(
            report.diffs.iter().all(|d| d.contains("passes:")),
            "fault-injected replay diverged: {:?}",
            report.diffs
        );
        prop_assert_eq!(&report.replayed.degradations, &trace.degradations);
        prop_assert_eq!(&report.replayed.verdict, &trace.verdict);
        prop_assert_eq!(&report.replayed.faults, &trace.faults);
        prop_assert_eq!(report.replayed.output_fp, trace.output_fp);
        prop_assert_eq!(&report.replayed.cache_events, &trace.cache_events);
    }
}
