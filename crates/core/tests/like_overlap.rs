//! LikeScan correctness sweep: prefix+suffix overlap and infix
//! degeneracies.
//!
//! A `LIKE 'a%a'` pattern must NOT match `"a"`: the prefix and the
//! suffix are distinct occurrences, so a match needs
//! `len ≥ prefix.len() + suffix.len()`. A matcher that tests the
//! prefix and the suffix independently accepts `"a"` (both tests pass
//! on the same single symbol). Each case runs on the scan route and on
//! the forced automata route and both must agree with the expected
//! row set.

use strcalc_alphabet::Alphabet;
use strcalc_core::{Calculus, EvalOutput, Planner, Query, Strategy};
use strcalc_relational::Database;

fn ab() -> Alphabet {
    Alphabet::ab()
}

/// Evaluates `U(x) & in(x, /pattern/)` over `rows` on the planner's
/// chosen route and on the forced automata route, asserts they agree,
/// and returns the matching rows.
fn sweep(pattern: &str, rows: &[&str]) -> (Vec<String>, Strategy) {
    let mut db = Database::new();
    db.insert_unary_parsed(&ab(), "U", rows).unwrap();
    let q = Query::parse(
        Calculus::SReg,
        ab(),
        vec!["x".into()],
        &format!("U(x) & in(x, /{pattern}/)"),
    )
    .unwrap();
    let plan = Planner::new().plan(&q).unwrap();
    let (routed, _) = plan.execute(&db).unwrap();
    let (direct, _) = Planner::new()
        .force(Strategy::Automata)
        .plan(&q)
        .unwrap()
        .execute(&db)
        .unwrap();
    let render = |out: &EvalOutput| -> Vec<String> {
        match out {
            EvalOutput::Finite(rel) => rel.iter().map(|t| ab().render(&t[0])).collect(),
            other => panic!("expected a finite output, got {other:?}"),
        }
    };
    let mut scan_rows = render(&routed);
    assert_eq!(
        scan_rows,
        render(&direct),
        "scan route disagrees with the automaton route on /{pattern}/"
    );
    scan_rows.sort();
    (scan_rows, plan.strategy)
}

#[test]
fn a_percent_a_requires_two_distinct_occurrences() {
    // LIKE 'a%a' — `"a"` must not match (len 1 < prefix+suffix = 2).
    let (rows, strategy) = sweep("a.*a", &["", "a", "aa", "aba", "ab", "ba", "aab"]);
    assert_eq!(strategy, Strategy::LikeLinearScan);
    assert_eq!(rows, ["aa", "aba"]);
}

#[test]
fn ab_percent_ba_rejects_the_overlapped_middle() {
    // LIKE 'ab%ba' — `"aba"` starts with `ab` and ends with `ba`, but
    // the occurrences overlap at the middle symbol; only strings of
    // length ≥ 4 can match.
    let (rows, strategy) = sweep("ab.*ba", &["aba", "abba", "abab", "abbba", "ab", "ba"]);
    assert_eq!(strategy, Strategy::LikeLinearScan);
    assert_eq!(rows, ["abba", "abbba"]);
}

#[test]
fn infix_percent_x_percent_handles_short_strings() {
    // LIKE '%b%' — the empty string and strings shorter than the infix
    // must be rejected without panicking.
    let (rows, strategy) = sweep(".*b.*", &["", "a", "b", "ab", "ba", "aa"]);
    assert_eq!(strategy, Strategy::LikeLinearScan);
    assert_eq!(rows, ["ab", "b", "ba"]);
}

#[test]
fn overlap_degeneracies_agree_on_the_dense_route_too() {
    // The same overlap shapes phrased outside the linear LIKE class
    // (an extra middle segment forces the general class), so the dense
    // batched tables answer them; they must agree with the automata.
    let (rows, strategy) = sweep("a.*b.*a", &["", "a", "aba", "abba", "aab", "ba", "abab"]);
    assert_eq!(strategy, Strategy::DenseDfaScan);
    assert_eq!(rows, ["aba", "abba"]);

    let (rows, strategy) = sweep("ab.*a.*ba", &["aba", "abba", "ababa", "abaaba", "ab"]);
    assert_eq!(strategy, Strategy::DenseDfaScan);
    assert_eq!(rows, ["abaaba", "ababa"]);
}
