//! Differential property tests for the dense DFA tier: the batched
//! byte-class-compressed table, the sparse DFA walked per string, and
//! full set-semantics query evaluation must agree on random batches —
//! including empty relations and zero-length strings.

use std::collections::BTreeSet;

use proptest::prelude::*;
use strcalc_alphabet::{Alphabet, Str};
use strcalc_automata::DenseDfa;
use strcalc_core::{Calculus, EvalOutput, Planner, Query};
use strcalc_logic::Lang;
use strcalc_relational::Database;

/// Fig. 2-style language filters: general-class shapes that densify
/// plus linear shapes (which route to the tuple-at-a-time scan), so
/// the set-semantics leg exercises both executors.
const PATTERNS: &[&str] = &["(aa)*", "b.*a.*", "a.*b.*a", "(ab)*", ".*", "a.b"];

fn ab() -> Alphabet {
    Alphabet::ab()
}

fn lang(pattern: &str) -> Lang {
    let regex = strcalc_automata::Regex::parse(&ab(), pattern).expect("pattern parses");
    Lang::named(format!("LIKE {pattern}"), regex)
}

/// Random batches over Σ = {a, b}: up to 40 strings of length 0..7,
/// the empty batch and the empty string both reachable.
fn arb_batch() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..2, 0..7), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batched_dense_agrees_with_sparse_and_set_semantics(
        p in 0..PATTERNS.len(),
        batch in arb_batch(),
    ) {
        let l = lang(PATTERNS[p]);
        let sparse = l.to_dfa(2);
        let dense = DenseDfa::compile(&sparse);
        let strs: Vec<Str> = batch.iter().map(|s| Str::from_syms(s.clone())).collect();

        // Leg 1: the batched dense table equals the sparse per-string walk.
        let refs: Vec<&Str> = strs.iter().collect();
        let mut mask = vec![true; refs.len()];
        dense.match_mask(&refs, &mut mask);
        for (i, s) in strs.iter().enumerate() {
            prop_assert_eq!(mask[i], sparse.accepts(s), "string {:?}", s);
        }

        // Leg 2: set semantics — evaluating `U(x) & x ∈ L` over a
        // relation holding the batch (deduplicated by storage) equals
        // the accepted subset.
        let mut db = Database::new();
        db.declare("U", 1).unwrap();
        for s in &strs {
            db.insert("U", vec![s.clone()]).unwrap();
        }
        let q = Query::parse(
            Calculus::SReg,
            ab(),
            vec!["x".into()],
            &format!("U(x) & in(x, /{}/)", PATTERNS[p]),
        )
        .unwrap();
        let plan = Planner::new().plan(&q).expect("plans");
        let (out, report) = plan.execute(&db).expect("routed eval");
        prop_assert_eq!(report.strategy, plan.strategy);
        let expected: BTreeSet<Vec<Str>> = strs
            .iter()
            .filter(|s| sparse.accepts(s))
            .map(|s| vec![s.clone()])
            .collect();
        match out {
            EvalOutput::Finite(rel) => prop_assert_eq!(rel.tuples(), &expected),
            other => prop_assert!(false, "expected finite output, got {other:?}"),
        }
    }
}

/// An empty stored relation flows through the batched executor without
/// a single table dispatch going wrong: empty output, zero rows
/// scanned, and the dense tables still compiled (their stats report).
#[test]
fn empty_relation_dense_scan_is_empty() {
    let mut db = Database::new();
    db.declare("U", 1).unwrap();
    let q = Query::parse(
        Calculus::SReg,
        ab(),
        vec!["x".into()],
        "U(x) & in(x, /(aa)*/)",
    )
    .unwrap();
    let plan = Planner::new().plan(&q).unwrap();
    assert_eq!(plan.strategy, strcalc_core::Strategy::DenseDfaScan);
    let (out, report) = plan.execute(&db).unwrap();
    match out {
        EvalOutput::Finite(rel) => assert!(rel.is_empty()),
        other => panic!("expected finite output, got {other:?}"),
    }
    assert_eq!(report.domain_size, 0, "no rows to scan");
    assert!(report.automaton_states > 0, "tables are still built");
}
