//! Differential property tests for resource-governed execution.
//!
//! Two invariants across all strategies (automata, active-domain
//! enumeration, bounded search, and the scan tiers):
//!
//! 1. **Sufficiency:** under the planner-seeded budget (which admits
//!    the plan's own certificates), a governed run is byte-identical
//!    to the ungoverned one — `Exact` verdict, no degradations, every
//!    ledger entry within budget.
//! 2. **No silent truncation:** under a starved budget a governed run
//!    is *never wrong silently*. Either the answer still equals the
//!    exact one (structural fallbacks like dense → sparse are
//!    answer-preserving), or the report carries a non-`Exact` verdict
//!    — and in every degraded case the SA4xx degradation list is
//!    non-empty.

use proptest::prelude::*;
use strcalc_alphabet::Alphabet;
use strcalc_core::{
    Budget, Calculus, ConcatEvaluator, DegradationPolicy, EvalOutput, Planner, Query,
    Strategy as PlanStrategy,
};
use strcalc_core::{CoreError, ExecVerdict};
use strcalc_logic::{Formula, Term};
use strcalc_relational::Database;

/// Random formulas with free variable `x` over the unary relation `R`
/// (same shape as the planner differential suite).
fn arb_formula() -> impl Strategy<Value = Formula> {
    let x = || Term::var("x");
    let y = || Term::var("y");
    let leaf = prop_oneof![
        Just(Formula::rel("R", vec![x()])),
        Just(Formula::rel("R", vec![y()])),
        Just(Formula::prefix(x(), y())),
        Just(Formula::prefix(y(), x())),
        Just(Formula::eq(x(), y())),
        Just(Formula::eq_len(x(), y())),
        Just(Formula::last_sym(x(), 0)),
        Just(Formula::last_sym(y(), 1)),
        Just(Formula::True),
    ];
    leaf.prop_recursive(2, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(Formula::not),
            inner.prop_map(|f| Formula::exists("y", f)),
        ]
    })
}

fn db() -> Database {
    let mut db = Database::new();
    db.insert_unary_parsed(&Alphabet::ab(), "R", &["", "a", "ab", "bab"])
        .unwrap();
    db
}

fn query_of(f: Formula) -> Query {
    let pinned = f.and(Formula::eq(Term::var("x"), Term::var("x")));
    let closed = if pinned.free_vars().contains("y") {
        Formula::exists("y", pinned)
    } else {
        pinned
    };
    Query::new(Calculus::SLen, Alphabet::ab(), vec!["x".into()], closed).expect("head = free vars")
}

/// A budget no automaton fits in (but with the run-level dimensions
/// the interpreters use left open).
fn starved() -> Budget {
    Budget {
        states: 1,
        bytes: 1,
        ..Budget::unlimited()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Sufficiency on the automata strategy: governed ≡ ungoverned
    // under the seeded budget, and the governor's ledger proves it.
    #[test]
    fn seeded_budget_never_degrades_automata(f in arb_formula()) {
        let q = query_of(f);
        let db = db();
        let plan = Planner::new().plan(&q).expect("plans");
        let (exact, _) = plan.execute(&db).expect("ungoverned");
        let (governed, report) = plan
            .execute_with(&db, &plan.seeded_budget())
            .expect("governed");
        prop_assert_eq!(governed, exact);
        prop_assert!(report.verdict.is_exact());
        prop_assert!(report.degradations.is_empty());
        prop_assert!(report.ledger.all_within());
        prop_assert!(!report.ledger.is_empty(), "every node is governed");
    }

    // Starvation on the automata strategy: the run degrades to the
    // bounded collapse domain — the same answer the forced
    // active-domain plan computes — and says so. Never silent, never
    // reported exact.
    #[test]
    fn starved_automata_degrades_to_the_collapse_answer(f in arb_formula()) {
        let q = query_of(f);
        let db = db();
        let plan = Planner::new().plan(&q).expect("plans");
        if plan.strategy != PlanStrategy::Automata {
            return;
        }
        let (degraded, report) = plan.execute_with(&db, &starved()).expect("degraded run");
        let (collapse, _) = Planner::new()
            .force(PlanStrategy::ActiveDomainEnum)
            .plan(&q)
            .expect("collapse plan")
            .execute(&db)
            .expect("collapse run");
        prop_assert_eq!(degraded, collapse);
        prop_assert!(!report.verdict.is_exact(), "a degraded run is never exact");
        prop_assert!(
            !report.degradations.is_empty(),
            "no silent truncation: degraded work must be SA4xx-recorded"
        );
        prop_assert!(!report.ledger.all_within());
        prop_assert_eq!(report.automaton_states, 0, "no automaton was built");
    }

    // The no-silent-truncation invariant, stated end-to-end: whenever
    // a starved answer differs from the exact answer, the report says
    // so (non-exact verdict + SA4xx events). A wrong-but-quiet run is
    // the one thing governance must make impossible.
    #[test]
    fn starved_runs_are_never_silently_wrong(f in arb_formula()) {
        let q = query_of(f);
        let db = db();
        let plan = Planner::new().plan(&q).expect("plans");
        let (exact, _) = plan.execute(&db).expect("exact run");
        let (answer, report) = plan.execute_with(&db, &starved()).expect("governed run");
        if answer != exact {
            prop_assert!(!report.verdict.is_exact());
            prop_assert!(!report.degradations.is_empty());
        }
        if !report.ledger.all_within() {
            prop_assert!(!report.degradations.is_empty());
        }
    }

    // Boolean routing under starvation obeys the same contract.
    #[test]
    fn starved_boolean_runs_carry_their_verdict(f in arb_formula()) {
        let g = Formula::exists("x", query_of(f).formula.clone());
        let q = Query::new(Calculus::SLen, Alphabet::ab(), vec![], g).expect("sentence");
        let db = db();
        let plan = Planner::new().plan(&q).expect("plans");
        let (exact, _) = plan.execute_bool(&db).expect("exact");
        let (answer, report) = plan
            .execute_bool_with(&db, &starved())
            .expect("governed bool run");
        if answer != exact {
            prop_assert!(!report.verdict.is_exact());
            prop_assert!(!report.degradations.is_empty());
        }
    }
}

/// Bounded search: a handed `search_depth` narrower than the plan's
/// bound clamps the assignment domain — the answer equals the direct
/// evaluator at the *clamped* depth, the verdict is `Bounded`, and
/// SA404 is recorded. (Ambient `BoundedSearch { budget }` subsumed.)
#[test]
fn clamped_search_depth_matches_the_clamped_evaluator() {
    let ab = Alphabet::ab();
    let formula = strcalc_logic::parse_formula(&ab, "exists z. (concat(x, x, z) & R(z))").unwrap();
    let head = vec!["x".to_string()];
    let db = db();
    let plan = Planner::new()
        .with_bound(3)
        .plan_formula(&ab, &head, &formula)
        .unwrap();
    assert_eq!(plan.strategy, PlanStrategy::BoundedSearch);

    let narrow = Budget {
        search_depth: 2,
        ..Budget::unlimited()
    };
    let (clamped, report) = plan.execute_with(&db, &narrow).unwrap();
    let direct = ConcatEvaluator::new(ab.clone(), 2)
        .eval(&formula, &head, &db)
        .unwrap();
    assert_eq!(clamped, EvalOutput::Finite(direct));
    assert!(matches!(report.verdict, ExecVerdict::Bounded { .. }));
    assert!(report
        .degradations
        .iter()
        .any(|d| d.code.as_str() == "SA404"));

    // A depth allowance at or above the plan's bound does not clamp.
    let (full, report) = plan.execute_with(&db, &plan.seeded_budget()).unwrap();
    let direct_full = ConcatEvaluator::new(ab, 3)
        .eval(&formula, &head, &db)
        .unwrap();
    assert_eq!(full, EvalOutput::Finite(direct_full));
    assert!(report.verdict.is_exact());
    assert!(report.degradations.is_empty());
}

/// Dense scan: starving the byte budget drops the dense tables and
/// falls back to the sparse per-tuple walk — the *same answer* (the
/// fallback is answer-preserving, so the verdict stays `Exact`), with
/// SA402 recorded and no dense bytes held.
#[test]
fn starved_dense_scan_falls_back_to_sparse_with_the_same_answer() {
    let mut db = Database::new();
    db.insert_unary_parsed(&Alphabet::ab(), "U", &["", "a", "aa", "ab", "aab", "abab"])
        .unwrap();
    let q = Query::parse(
        Calculus::SReg,
        Alphabet::ab(),
        vec!["x".into()],
        "U(x) & in(x, /(aa)*/)",
    )
    .unwrap();
    let plan = Planner::new().plan(&q).unwrap();
    assert_eq!(plan.strategy, PlanStrategy::DenseDfaScan);

    let (dense, dense_report) = plan.execute(&db).unwrap();
    assert!(dense_report.degradations.is_empty());
    assert!(dense_report.artifact_bytes > 0, "dense tables were held");

    let (sparse, report) = plan.execute_with(&db, &starved()).unwrap();
    assert_eq!(sparse, dense, "the sparse fallback is answer-preserving");
    assert!(report.verdict.is_exact());
    assert!(report
        .degradations
        .iter()
        .any(|d| d.code.as_str() == "SA402"));
    assert_eq!(report.artifact_bytes, 0, "no dense tables under starvation");
}

/// The like-linear scan builds no automata and holds no tables: its
/// certified demand is zero, so even a starved budget runs it exactly.
#[test]
fn like_scan_is_immune_to_starvation() {
    let mut db = Database::new();
    db.insert_unary_parsed(&Alphabet::ab(), "U", &["", "a", "aa", "aba", "ab"])
        .unwrap();
    let q = Query::parse(
        Calculus::SReg,
        Alphabet::ab(),
        vec!["x".into()],
        "U(x) & in(x, /a.*a/)",
    )
    .unwrap();
    let plan = Planner::new().plan(&q).unwrap();
    assert_eq!(plan.strategy, PlanStrategy::LikeLinearScan);
    let (exact, _) = plan.execute(&db).unwrap();
    let (governed, report) = plan.execute_with(&db, &starved()).unwrap();
    assert_eq!(governed, exact);
    assert!(report.verdict.is_exact());
    assert!(report.degradations.is_empty());
    assert!(report.ledger.all_within());
}

/// Under `DegradationPolicy::Fail` an exhausted budget rejects the run
/// up front instead of degrading (multi-tenant admission control).
#[test]
fn fail_policy_rejects_instead_of_degrading() {
    let q = Query::parse(
        Calculus::S,
        Alphabet::ab(),
        vec!["x".into()],
        "exists y. (R(y) & x <= y)",
    )
    .unwrap();
    let db = db();
    let plan = Planner::new().plan(&q).unwrap();
    let err = plan
        .execute_with(&db, &starved().with_policy(DegradationPolicy::Fail))
        .unwrap_err();
    assert!(
        matches!(err, CoreError::BudgetExhausted { .. }),
        "got {err:?}"
    );
    // The same budget with the degrade policy still answers.
    let (out, report) = plan.execute_with(&db, &starved()).unwrap();
    assert!(matches!(out, EvalOutput::Finite(_)));
    assert!(!report.degradations.is_empty());
}
