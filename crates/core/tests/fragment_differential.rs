//! Differential property tests for fragment inference: the planner's
//! inferred strategy agrees with the legacy syntactic concat scan it
//! replaced on that scan's whole domain, and every strategy it routes
//! to — including the LIKE linear-scan fast path, which builds no
//! automaton — agrees with exact automaton evaluation on the output.

use proptest::prelude::*;
use strcalc_alphabet::Alphabet;
use strcalc_analyze::{fragments, EvalClass};
use strcalc_core::{
    AutomataEngine, Calculus, EvalOutput, Planner, Query, Strategy as PlanStrategy,
};
use strcalc_logic::{Atom, Formula, Lang, Term};
use strcalc_relational::Database;

fn ab() -> Alphabet {
    Alphabet::ab()
}

fn db() -> Database {
    let mut db = Database::new();
    db.insert_unary_parsed(&ab(), "R", &["", "a", "ab", "ba", "bab", "abab", "bb"])
        .unwrap();
    let s = |t: &str| ab().parse(t).unwrap();
    for (u, v) in [
        ("a", "ab"),
        ("ab", "ab"),
        ("ba", "b"),
        ("bab", "abab"),
        ("", "bb"),
        ("abb", "abb"),
    ] {
        db.insert("T", vec![s(u), s(v)]).unwrap();
    }
    db
}

/// LIKE-shaped patterns across the whole Petersen taxonomy (prefix,
/// suffix, infix, fixed-length, literal, any, prefix+suffix), plus
/// shapes that fall outside the linear class (`b.*a.*` mixes a leading
/// literal with a middle segment; `(aa)*` is not LIKE-shaped at all) so
/// both routing outcomes are exercised.
const PATTERNS: &[&str] = &[
    "a.*", ".*b", ".*ab.*", "a.b", "ab", ".*", "a.*.*b", "b.*a.*", "(aa)*",
];

fn lang(pattern: &str) -> Lang {
    let regex = strcalc_automata::Regex::parse(&ab(), pattern).expect("pattern parses");
    Lang::named(format!("LIKE {pattern}"), regex)
}

/// Scan-candidate formulas: a stored-relation atom, a LIKE filter, and
/// (optionally) structure that keeps or evicts the formula from the
/// linear class — an alias chain (stays linear) or a prefix comparison
/// (not scannable, falls back to automata).
fn candidate(pattern: &str, shape: usize) -> (Formula, Vec<String>) {
    let x = || Term::var("x");
    let y = || Term::var("y");
    let z = || Term::var("z");
    match shape {
        // R(x) ∧ x ∈ L — the bare unary lookup.
        0 => (
            Formula::rel("R", vec![x()]).and(Formula::in_lang(x(), lang(pattern))),
            vec!["x".into()],
        ),
        // ∃y (T(y, x) ∧ y ∈ L) — filter on a projected-away column.
        1 => (
            Formula::exists(
                "y",
                Formula::rel("T", vec![y(), x()]).and(Formula::in_lang(y(), lang(pattern))),
            ),
            vec!["x".into()],
        ),
        // ∃y (T(x, y) ∧ y = z ∧ z ∈ L) — alias chain into the filter.
        2 => (
            Formula::exists(
                "y",
                Formula::rel("T", vec![x(), y()])
                    .and(Formula::eq(y(), z()))
                    .and(Formula::in_lang(z(), lang(pattern))),
            ),
            vec!["x".into(), "z".into()],
        ),
        // T(x, x) ∧ x ∈ L — repeated column (an eq_cols constraint).
        3 => (
            Formula::rel("T", vec![x(), x()]).and(Formula::in_lang(x(), lang(pattern))),
            vec!["x".into()],
        ),
        // R(x) ∧ x ∈ L ∧ x ⪯ y ∧ R(y) — the comparison atom is not
        // scannable; inference must fall back to automata.
        _ => (
            Formula::rel("R", vec![x()])
                .and(Formula::in_lang(x(), lang(pattern)))
                .and(Formula::prefix(x(), y()))
                .and(Formula::rel("R", vec![y()])),
            vec!["x".into(), "y".into()],
        ),
    }
}

/// The syntactic concat scan `Planner::strategy_for` replaced, kept
/// verbatim as the differential baseline.
fn legacy_has_concat(f: &Formula) -> bool {
    let mut found = false;
    f.visit(&mut |sub| {
        if matches!(sub, Formula::Atom(Atom::ConcatEq(..))) {
            found = true;
        }
    });
    found
}

/// Random formulas over the legacy pool (no language atoms): exactly
/// the domain on which the old syntactic scan decided the strategy.
fn arb_legacy_formula() -> impl Strategy<Value = Formula> {
    let x = || Term::var("x");
    let y = || Term::var("y");
    let leaf = prop_oneof![
        Just(Formula::rel("R", vec![x()])),
        Just(Formula::rel("R", vec![y()])),
        Just(Formula::prefix(x(), y())),
        Just(Formula::eq(x(), y())),
        Just(Formula::last_sym(x(), 0)),
        Just(Formula::concat_eq(x(), x(), y())),
        Just(Formula::True),
        Just(Formula::False),
    ];
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(Formula::not),
            inner.prop_map(|f| Formula::exists("y", f)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // On the legacy scan's domain (no language atoms anywhere), the
    // inferred strategy is exactly what the syntactic ConcatEq scan
    // chose: bounded search iff a ConcatEq atom occurs, else automata.
    #[test]
    fn inferred_strategy_matches_the_legacy_scan(f in arb_legacy_formula()) {
        let expected = if legacy_has_concat(&f) {
            PlanStrategy::BoundedSearch
        } else {
            PlanStrategy::Automata
        };
        prop_assert_eq!(Planner::new().strategy_for(&f, 2).expect("tame or concat"), expected);
    }

    // The planner's routing is exactly the inferred evaluation class:
    // linear scan iff fragment inference derives a scan plan.
    #[test]
    fn routing_agrees_with_the_inferred_class(
        p in 0..PATTERNS.len(),
        shape in 0usize..5,
    ) {
        let (f, _) = candidate(PATTERNS[p], shape);
        let strategy = Planner::new().strategy_for(&f, 2).expect("never concat");
        match fragments::eval_class(&f) {
            EvalClass::LikeLinear(_) => prop_assert_eq!(strategy, PlanStrategy::LikeLinearScan),
            // The pool's general-class patterns are tiny, so their
            // state bounds always fit the default threshold.
            EvalClass::LikeGeneral(_) => prop_assert_eq!(strategy, PlanStrategy::DenseDfaScan),
            EvalClass::AutomataTame => prop_assert_eq!(strategy, PlanStrategy::Automata),
            EvalClass::ConcatBounded => prop_assert!(false, "no ConcatEq in the pool"),
        }
    }

    // Whatever the route — scan fast path or automata — the output
    // equals exact automaton evaluation of the same query.
    #[test]
    fn every_route_agrees_with_automaton_eval(
        p in 0..PATTERNS.len(),
        shape in 0usize..5,
    ) {
        let (f, head) = candidate(PATTERNS[p], shape);
        let q = Query::new(Calculus::SReg, ab(), head, f).expect("head = free vars");
        let db = db();
        let direct = AutomataEngine::new().eval(&q, &db).expect("direct eval");
        let plan = Planner::new().plan(&q).expect("plans");
        let (routed, report) = plan.execute(&db).expect("routed eval");
        if plan.strategy == PlanStrategy::LikeLinearScan {
            prop_assert_eq!(report.automaton_states, 0, "fast path built an automaton");
        }
        prop_assert_eq!(routed, direct);
    }

    // Sentence (boolean) routing agrees too: the scan answers an
    // existentially closed query by projecting to zero columns.
    #[test]
    fn boolean_routes_agree_with_automaton_eval(
        p in 0..PATTERNS.len(),
        shape in 0usize..5,
    ) {
        let (f, head) = candidate(PATTERNS[p], shape);
        let closed = head
            .iter()
            .rev()
            .fold(f, |g, v| Formula::exists(v.clone(), g));
        let q = Query::new(Calculus::SReg, ab(), vec![], closed).expect("sentence");
        let db = db();
        let direct = AutomataEngine::new().eval_bool(&q, &db).expect("direct");
        let (routed, _) = Planner::new()
            .plan(&q)
            .expect("plans")
            .execute_bool(&db)
            .expect("routed");
        prop_assert_eq!(routed, direct);
    }

    // The scan fast paths (linear and dense) and the forced automata
    // strategy agree on the same plan-level query — the strongest form
    // of "the scan changes the work, not the semantics".
    #[test]
    fn forced_automata_agrees_with_the_scan(p in 0..PATTERNS.len(), shape in 0usize..4) {
        let (f, head) = candidate(PATTERNS[p], shape);
        let class = fragments::eval_class(&f);
        if matches!(class, EvalClass::LikeLinear(_) | EvalClass::LikeGeneral(_)) {
            let linear = matches!(class, EvalClass::LikeLinear(_));
            let q = Query::new(Calculus::SReg, ab(), head, f).expect("head = free vars");
            let db = db();
            let (scan, scan_report) = Planner::new()
                .plan(&q)
                .expect("plans")
                .execute(&db)
                .expect("scan eval");
            let (auto, _) = Planner::new()
                .force(PlanStrategy::Automata)
                .plan(&q)
                .expect("plans")
                .execute(&db)
                .expect("automata eval");
            if linear {
                prop_assert_eq!(scan_report.automaton_states, 0);
            } else {
                prop_assert_eq!(scan_report.strategy, PlanStrategy::DenseDfaScan);
                prop_assert!(scan_report.automaton_states > 0, "dense tables have states");
            }
            match (scan, auto) {
                (EvalOutput::Finite(a), EvalOutput::Finite(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "finiteness mismatch: {a:?} vs {b:?}"),
            }
        }
    }
}

/// Stored strings containing symbols outside the query alphabet denote
/// no string of `Σ*`: the automaton route drops such tuples wholesale
/// (the relation trie is intersected with language and cylindrification
/// automata that only carry edges for `Σ`, in *every* column), and the
/// scan routes must agree rather than matching raw bytes. Regression:
/// the linear matchers used to compare out-of-`Σ` symbols literally, so
/// a stored `"c"` matched `LIKE '%'` on the scan route but not on the
/// automaton route.
#[test]
fn out_of_alphabet_rows_agree_with_the_automaton_route() {
    use strcalc_alphabet::Str;
    let s = |t: &str| ab().parse(t).unwrap();
    // Symbol 2 (`c`) is outside Σ = {a, b}.
    let c = || Str::from_syms(vec![2]);
    let ac = || Str::from_syms(vec![0, 2]);
    let mut db = Database::new();
    for row in [s(""), s("a"), s("ab"), s("aa"), c(), ac()] {
        db.insert("R", vec![row]).unwrap();
    }
    for (u, v) in [
        (s("a"), s("ab")),
        (s("ab"), s("ab")),
        (ac(), s("a")), // out-of-Σ in the filtered column
        (s("a"), ac()), // out-of-Σ in the *other* column only
        (c(), c()),
    ] {
        db.insert("T", vec![u, v]).unwrap();
    }
    // Patterns across both scan routes, `.*` included: under the ∅-
    // outside-Σ convention even the universal language rejects the
    // out-of-Σ rows.
    for pattern in ["a.*", ".*", ".*b", "b.*a.*", "(aa)*", "a.*.*b"] {
        for shape in 0..4 {
            let (f, head) = candidate(pattern, shape);
            let q = Query::new(Calculus::SReg, ab(), head, f).expect("head = free vars");
            let scan_plan = Planner::new().plan(&q).expect("plans");
            assert_ne!(
                scan_plan.strategy,
                PlanStrategy::Automata,
                "{pattern}/{shape} should route to a scan"
            );
            let (scan, _) = scan_plan.execute(&db).expect("scan eval");
            let (auto, _) = Planner::new()
                .force(PlanStrategy::Automata)
                .plan(&q)
                .expect("plans")
                .execute(&db)
                .expect("automata eval");
            match (scan, auto) {
                (EvalOutput::Finite(a), EvalOutput::Finite(b)) => {
                    assert_eq!(a, b, "{pattern}/{shape} disagrees on out-of-Σ rows")
                }
                (a, b) => panic!("finiteness mismatch: {a:?} vs {b:?}"),
            }
        }
    }
}
