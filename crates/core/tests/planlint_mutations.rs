//! Mutation-style tests for planlint: every plan the planner produces
//! verifies cleanly, and plans corrupted after planning — swapped
//! arities, dropped complement caps, grafted alphabets, stale cache
//! keys, wrong root operators — are rejected with the matching SA2xx
//! code, both by a direct [`PlanChecker`] run and by the execute-time
//! lint gate.

use std::sync::Arc;

use proptest::prelude::*;
use strcalc_alphabet::Alphabet;
use strcalc_analyze::Code;
use strcalc_core::plan::PlanChecker;
use strcalc_core::{
    AutomataEngine, AutomatonCache, Calculus, CoreError, Plan, PlanNode, PlanOp, Planner, Query,
};
use strcalc_logic::{Formula, Term};
use strcalc_relational::Database;

/// Random formulas with free variable `x` over the S/S_len signature
/// (mirrors the planner differential generator).
fn arb_formula() -> impl Strategy<Value = Formula> {
    let x = || Term::var("x");
    let y = || Term::var("y");
    let leaf = prop_oneof![
        Just(Formula::rel("R", vec![x()])),
        Just(Formula::rel("R", vec![y()])),
        Just(Formula::prefix(x(), y())),
        Just(Formula::eq(x(), y())),
        Just(Formula::eq_len(x(), y())),
        Just(Formula::last_sym(x(), 0)),
        Just(Formula::lex_leq(x(), y())),
        Just(Formula::True),
        Just(Formula::False),
    ];
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(Formula::not),
            inner.prop_map(|f| Formula::exists("y", f)),
        ]
    })
}

/// Pin `x` free and close over a leftover `y` so the head is stable.
fn query_of(f: Formula) -> Query {
    let pinned = f.and(Formula::eq(Term::var("x"), Term::var("x")));
    let closed = if pinned.free_vars().contains("y") {
        Formula::exists("y", pinned)
    } else {
        pinned
    };
    Query::new(Calculus::SLen, Alphabet::ab(), vec!["x".into()], closed).expect("head = free vars")
}

fn db() -> Database {
    let mut db = Database::new();
    db.insert_unary_parsed(&Alphabet::ab(), "U", &["ab", "ba", "a"])
        .unwrap();
    db
}

fn probe() -> Plan {
    let q = Query::parse(
        Calculus::S,
        Alphabet::ab(),
        vec!["x".into()],
        "exists y. (U(y) & x <= y)",
    )
    .unwrap();
    Planner::new().plan(&q).unwrap()
}

/// Pre-order mutable visitor (test-local; the crate's own is cfg(test)).
fn visit_mut(node: &mut PlanNode, f: &mut impl FnMut(&mut PlanNode)) {
    f(node);
    for c in &mut node.children {
        visit_mut(c, f);
    }
}

/// Asserts that the direct checker flags `code` on the corrupted plan
/// and that the execute-time lint gate rejects it with the same code.
fn assert_rejected(plan: &Plan, code: Code) {
    let report = PlanChecker::for_plan(plan).check(&plan.root);
    assert!(
        report.error_codes().contains(&code),
        "expected {code:?}, got {:?}",
        report.error_codes()
    );
    match plan.execute(&db()) {
        Err(CoreError::PlanRejected { stage, diagnostics }) => {
            assert_eq!(stage, "execute");
            assert!(
                diagnostics.iter().any(|d| d.contains(code.as_str())),
                "expected {} in {diagnostics:?}",
                code.as_str()
            );
        }
        other => panic!("expected PlanRejected, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Every planner-produced plan passes planlint, for every strategy
    // the formula admits.
    #[test]
    fn planner_plans_lint_clean(f in arb_formula()) {
        let q = query_of(f);
        for planner in [
            Planner::new(),
            Planner::for_engine(
                &AutomataEngine::new().with_cache(Arc::new(AutomatonCache::new())),
            ),
            Planner::new().force(strcalc_core::Strategy::ActiveDomainEnum),
        ] {
            let plan = planner.plan(&q).expect("planner output is verified");
            let report = PlanChecker::for_plan(&plan).check(&plan.root);
            prop_assert!(!report.has_errors(), "{:?}", report.diagnostics);
        }
    }
}

#[test]
fn sa200_dropped_product_child_is_rejected() {
    let mut plan = probe();
    visit_mut(&mut plan.root, &mut |n| {
        if n.op == PlanOp::Product && n.children.len() >= 2 {
            n.children.pop();
        }
    });
    assert_rejected(&plan, Code::PlanOperatorArity);
}

#[test]
fn sa201_corrupted_tracks_are_rejected() {
    let mut plan = probe();
    visit_mut(&mut plan.root, &mut |n| {
        if n.op == PlanOp::Product {
            n.vars.push("zzz".into());
        }
    });
    assert_rejected(&plan, Code::PlanTrackMismatch);
}

#[test]
fn sa202_grafted_alphabet_leaf_is_rejected() {
    let mut plan = probe();
    visit_mut(&mut plan.root, &mut |n| {
        if let PlanOp::CompileAutomaton { alphabet_fp, .. } = &mut n.op {
            *alphabet_fp ^= 0xdead_beef;
        }
    });
    assert_rejected(&plan, Code::PlanAlphabetMismatch);
}

#[test]
fn sa203_dropped_complement_cap_is_rejected() {
    // The probe query has no negation; take one that lowers a Complement.
    let q = Query::parse(
        Calculus::S,
        Alphabet::ab(),
        vec!["x".into()],
        "U(x) & !(x <= x)",
    )
    .unwrap();
    let mut plan = Planner::new().plan(&q).unwrap();
    let mut seen = false;
    visit_mut(&mut plan.root, &mut |n| {
        if let PlanOp::Complement { cap } = &mut n.op {
            *cap = 0;
            seen = true;
        }
    });
    assert!(seen, "query should lower a Complement node");
    assert_rejected(&plan, Code::PlanComplementUncapped);
}

#[test]
fn sa204_stale_cache_key_is_rejected() {
    let engine = AutomataEngine::new().with_cache(Arc::new(AutomatonCache::new()));
    let q = Query::parse(
        Calculus::S,
        Alphabet::ab(),
        vec!["x".into()],
        "exists y. (U(y) & x <= y)",
    )
    .unwrap();
    let mut plan = Planner::for_engine(&engine).plan(&q).unwrap();
    let mut seen = false;
    visit_mut(&mut plan.root, &mut |n| {
        if let PlanOp::CacheLookup { formula_fp } = &mut n.op {
            *formula_fp ^= 1;
            seen = true;
        }
    });
    assert!(seen, "cache-assignment should insert a CacheLookup");
    assert_rejected(&plan, Code::PlanCacheKeyMismatch);
}

#[test]
fn sa205_wrong_root_operator_is_rejected() {
    let mut plan = probe();
    plan.root.op = PlanOp::BoundedSearch { budget: 4 };
    assert_rejected(&plan, Code::PlanStrategyMismatch);
}

#[test]
fn sa206_corrupted_dense_threshold_is_rejected() {
    // `(aa)*` is not LIKE-shaped, so the filter densifies.
    let q = Query::parse(
        Calculus::SReg,
        Alphabet::ab(),
        vec!["x".into()],
        "U(x) & in(x, /(aa)*/)",
    )
    .unwrap();
    let mut plan = Planner::new().plan(&q).unwrap();
    assert_eq!(plan.strategy, strcalc_core::Strategy::DenseDfaScan);
    let mut seen = false;
    visit_mut(&mut plan.root, &mut |n| {
        if let PlanOp::DenseScan { threshold, .. } = &mut n.op {
            *threshold = 0;
            seen = true;
        }
    });
    assert!(seen, "the dense route roots in a DenseScan node");
    assert_rejected(&plan, Code::PlanDenseOverThreshold);
}

#[test]
fn sa305_grafted_dense_scan_plan_is_rejected() {
    let plan_for = |re: &str| {
        let q = Query::parse(
            Calculus::SReg,
            Alphabet::ab(),
            vec!["x".into()],
            &format!("U(x) & in(x, /{re}/)"),
        )
        .unwrap();
        Planner::new().plan(&q).unwrap()
    };
    let a = plan_for("(aa)*");
    let b = plan_for("(bb)*");
    assert_eq!(a.strategy, strcalc_core::Strategy::DenseDfaScan);
    let mut forged = a.clone();
    forged.root.op = b.root.op.clone();
    assert_rejected(&forged, Code::PlanFragmentMismatch);
}

#[test]
fn verified_plans_render_their_certificates() {
    let plan = probe();
    let text = plan.explain_text();
    assert!(text.contains("certificate: states ≤"), "{text}");
    assert!(text.contains("verified"), "{text}");
    let json = plan.explain_json();
    assert!(json.contains("\"certificate\":{\"states\":["), "{json}");
    assert!(json.contains("\"verified\":true"), "{json}");
}
