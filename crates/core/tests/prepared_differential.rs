//! Differential property tests for the prepared-query subsystem: for
//! random formulas over `S`/`S_len` (including database relations),
//! `prepare`-then-eval agrees with direct `eval`, the cached engine
//! agrees with the uncached one, `CacheStats` accounting is exact, and a
//! second eval on the same handle performs zero automaton constructions.

use std::sync::Arc;

use proptest::prelude::*;
use strcalc_alphabet::Alphabet;
use strcalc_core::{AutomataEngine, AutomatonCache, Calculus, Query};
use strcalc_logic::{Formula, Term};
use strcalc_relational::Database;

/// Random formulas with free variable `x`, over the unary relation `R`
/// and the S/S_len signature.
fn arb_formula() -> impl Strategy<Value = Formula> {
    let x = || Term::var("x");
    let y = || Term::var("y");
    let leaf = prop_oneof![
        Just(Formula::rel("R", vec![x()])),
        Just(Formula::rel("R", vec![y()])),
        Just(Formula::prefix(x(), y())),
        Just(Formula::prefix(y(), x())),
        Just(Formula::eq(x(), y())),
        Just(Formula::eq_len(x(), y())),
        Just(Formula::last_sym(x(), 0)),
        Just(Formula::last_sym(y(), 1)),
        Just(Formula::lex_leq(x(), y())),
        Just(Formula::True),
        Just(Formula::False),
    ];
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(Formula::not),
            inner.prop_map(|f| Formula::exists("y", f)),
        ]
    })
}

fn db() -> Database {
    let mut db = Database::new();
    db.insert_unary_parsed(&Alphabet::ab(), "R", &["", "a", "ab", "bab"])
        .unwrap();
    db
}

/// Pin `x` free so the query head is stable regardless of what the
/// random formula mentions; quantify away a leftover free `y`.
fn query_of(f: Formula) -> Query {
    let pinned = f.and(Formula::eq(Term::var("x"), Term::var("x")));
    let closed = if pinned.free_vars().contains("y") {
        Formula::exists("y", pinned)
    } else {
        pinned
    };
    Query::new(Calculus::SLen, Alphabet::ab(), vec!["x".into()], closed).expect("head = free vars")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prepared_and_cached_agree_with_direct_eval(f in arb_formula()) {
        let q = query_of(f);
        let db = db();

        // Reference: the plain uncached engine.
        let plain = AutomataEngine::new();
        let expected = plain.eval(&q, &db).expect("evaluates");
        let expected_count = plain.count(&q, &db).expect("counts");

        // Cached engine: same results, exact stats accounting.
        let cache = Arc::new(AutomatonCache::new());
        let cached = AutomataEngine::new().with_cache(Arc::clone(&cache));
        prop_assert_eq!(&cached.eval(&q, &db).expect("cached eval"), &expected);
        prop_assert_eq!(cached.count(&q, &db).expect("cached count"), expected_count);
        let stats = cache.stats();
        prop_assert_eq!(stats.misses, 1, "one compile for eval");
        prop_assert_eq!(stats.hits, 1, "count reused it");
        prop_assert_eq!(stats.entries, 1);

        // Prepared handle: same results, exactly one construction for
        // any number of evals.
        let prepared = plain.prepare(q);
        prop_assert_eq!(&prepared.eval(&db).expect("prepared eval"), &expected);
        prop_assert_eq!(&prepared.eval(&db).expect("prepared re-eval"), &expected);
        prop_assert_eq!(prepared.count(&db).expect("prepared count"), expected_count);
        prop_assert_eq!(
            prepared.compilations(), 1,
            "second and third use of the handle construct nothing"
        );
    }

    #[test]
    fn contains_agrees_between_paths(f in arb_formula()) {
        let q = query_of(f);
        let db = db();
        let plain = AutomataEngine::new();
        let cache = Arc::new(AutomatonCache::new());
        let cached = AutomataEngine::new().with_cache(Arc::clone(&cache));
        let prepared = cached.prepare(q.clone());
        for probe in Alphabet::ab().strings_up_to(3) {
            let tuple = [probe];
            let direct = plain.contains(&q, &db, &tuple).expect("contains");
            prop_assert_eq!(cached.contains(&q, &db, &tuple).expect("cached"), direct);
            prop_assert_eq!(prepared.contains(&db, &tuple).expect("prepared"), direct);
        }
        prop_assert_eq!(prepared.compilations(), 0, "served by the shared cache");
        prop_assert_eq!(cache.stats().misses, 1, "one compile total");
    }
}
