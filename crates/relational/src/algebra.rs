//! The extended relational algebras `RA(S)`, `RA(S_left)`, `RA(S_reg)`,
//! `RA(S_len)` (Sections 6.2 and 7.1 of the paper).
//!
//! One expression type covers all four algebras; which algebra an
//! expression belongs to is computed by [`RaExpr::algebra_class`] from
//! the operators it uses and the structure class of its `σ_α` formulas.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

use strcalc_alphabet::{Alphabet, Str, Sym};
use strcalc_logic::compile::{Compiled, Compiler};
use strcalc_logic::transform::fragment;
use strcalc_logic::{CompileError, Formula, LogicError, StructureClass, Term};

use crate::database::{Database, Relation, Schema};

/// An algebra expression.
///
/// Column references inside `σ_α` formulas use variables named `c0`,
/// `c1`, … (see [`RaExpr::col`]). Following the paper, the selection
/// formula never refers to the database — it is a pure structure formula.
#[derive(Debug, Clone, PartialEq)]
pub enum RaExpr {
    /// A schema relation.
    Rel(String),
    /// `R_ε`: the constant unary relation `{(ε)}`.
    EpsilonRel,
    /// `σ_α(e)`: keep tuples satisfying the pure structure formula `α`.
    Select(Box<RaExpr>, Formula),
    /// Generalized projection `π_{i₁,…,iₘ}(e)` (columns may repeat or be
    /// permuted).
    Project(Box<RaExpr>, Vec<usize>),
    /// Cartesian product.
    Product(Box<RaExpr>, Box<RaExpr>),
    /// Set union (same arity).
    Union(Box<RaExpr>, Box<RaExpr>),
    /// Set difference (same arity).
    Diff(Box<RaExpr>, Box<RaExpr>),
    /// `prefix_i(e)`: adjoin a column ranging over all prefixes of column
    /// `i` (`RA(S)` and up).
    Prefix(Box<RaExpr>, usize),
    /// `add^r_{i,a}(e)`: adjoin `s_i · a` (`RA(S)` and up).
    AddRight(Box<RaExpr>, usize, Sym),
    /// `add^l_{i,a}(e)`: adjoin `a · s_i` (`RA(S_left)`).
    AddLeft(Box<RaExpr>, usize, Sym),
    /// `trim^l_{i,a}(e)`: adjoin `s_i − a` (`RA(S_left)`).
    TrimLeft(Box<RaExpr>, usize, Sym),
    /// `↓_i(e)`: adjoin a column ranging over all strings of length ≤
    /// `|s_i|` (`RA(S_len)`; exponential by design — see Section 6.2).
    Down(Box<RaExpr>, usize),
    /// `ins_{i,j,a}(e)`: adjoin the insertion of `a` into column `i`
    /// right after the prefix in column `j` — the algebra face of the
    /// paper's Conclusion extension. Rows where column `j` is not a
    /// prefix of column `i` are dropped (the insertion is undefined
    /// there).
    InsertAt(Box<RaExpr>, usize, usize, Sym),
}

/// Errors from algebra evaluation and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum RaError {
    UnknownRelation(String),
    /// Arity mismatch between the operands of `∪`/`−`.
    ArityMismatch {
        left: usize,
        right: usize,
    },
    /// Column index out of range.
    BadColumn {
        index: usize,
        arity: usize,
    },
    /// A `σ_α` formula references a column beyond the operand's arity, or
    /// a non-column variable.
    BadSelectVar {
        var: String,
        arity: usize,
    },
    /// Compilation of a `σ_α` formula failed.
    Compile(CompileError),
    /// Fragment analysis of a `σ_α` formula failed.
    Fragment(LogicError),
}

impl fmt::Display for RaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            RaError::ArityMismatch { left, right } => {
                write!(f, "arity mismatch: {left} vs {right}")
            }
            RaError::BadColumn { index, arity } => {
                write!(f, "column {index} out of range for arity {arity}")
            }
            RaError::BadSelectVar { var, arity } => write!(
                f,
                "selection variable {var:?} is not a column c0..c{}",
                arity.saturating_sub(1)
            ),
            RaError::Compile(e) => write!(f, "selection compile error: {e}"),
            RaError::Fragment(e) => write!(f, "fragment analysis error: {e}"),
        }
    }
}

impl std::error::Error for RaError {}

impl From<CompileError> for RaError {
    fn from(e: CompileError) -> Self {
        RaError::Compile(e)
    }
}

impl RaExpr {
    /// The term referring to column `i` inside a `σ_α` formula.
    pub fn col(i: usize) -> Term {
        Term::var(format!("c{i}"))
    }

    /// Shorthand builders.
    pub fn rel(name: impl Into<String>) -> RaExpr {
        RaExpr::Rel(name.into())
    }

    pub fn select(self, alpha: Formula) -> RaExpr {
        RaExpr::Select(Box::new(self), alpha)
    }

    pub fn project(self, cols: Vec<usize>) -> RaExpr {
        RaExpr::Project(Box::new(self), cols)
    }

    pub fn product(self, other: RaExpr) -> RaExpr {
        RaExpr::Product(Box::new(self), Box::new(other))
    }

    pub fn union(self, other: RaExpr) -> RaExpr {
        RaExpr::Union(Box::new(self), Box::new(other))
    }

    pub fn diff(self, other: RaExpr) -> RaExpr {
        RaExpr::Diff(Box::new(self), Box::new(other))
    }

    pub fn prefix(self, i: usize) -> RaExpr {
        RaExpr::Prefix(Box::new(self), i)
    }

    pub fn add_right(self, i: usize, a: Sym) -> RaExpr {
        RaExpr::AddRight(Box::new(self), i, a)
    }

    pub fn add_left(self, i: usize, a: Sym) -> RaExpr {
        RaExpr::AddLeft(Box::new(self), i, a)
    }

    pub fn trim_left(self, i: usize, a: Sym) -> RaExpr {
        RaExpr::TrimLeft(Box::new(self), i, a)
    }

    pub fn down(self, i: usize) -> RaExpr {
        RaExpr::Down(Box::new(self), i)
    }

    pub fn insert_at(self, i: usize, j: usize, a: Sym) -> RaExpr {
        RaExpr::InsertAt(Box::new(self), i, j, a)
    }

    /// Static arity of the expression under a schema.
    pub fn arity(&self, schema: &Schema) -> Result<usize, RaError> {
        match self {
            RaExpr::Rel(r) => schema
                .arity(r)
                .ok_or_else(|| RaError::UnknownRelation(r.clone())),
            RaExpr::EpsilonRel => Ok(1),
            RaExpr::Select(e, _) => e.arity(schema),
            RaExpr::Project(e, cols) => {
                let a = e.arity(schema)?;
                for &c in cols {
                    if c >= a {
                        return Err(RaError::BadColumn { index: c, arity: a });
                    }
                }
                Ok(cols.len())
            }
            RaExpr::Product(a, b) => Ok(a.arity(schema)? + b.arity(schema)?),
            RaExpr::Union(a, b) | RaExpr::Diff(a, b) => {
                let (x, y) = (a.arity(schema)?, b.arity(schema)?);
                if x != y {
                    return Err(RaError::ArityMismatch { left: x, right: y });
                }
                Ok(x)
            }
            RaExpr::Prefix(e, i)
            | RaExpr::AddRight(e, i, _)
            | RaExpr::AddLeft(e, i, _)
            | RaExpr::TrimLeft(e, i, _)
            | RaExpr::Down(e, i) => {
                let a = e.arity(schema)?;
                if *i >= a {
                    return Err(RaError::BadColumn {
                        index: *i,
                        arity: a,
                    });
                }
                Ok(a + 1)
            }
            RaExpr::InsertAt(e, i, j, _) => {
                let a = e.arity(schema)?;
                for &c in &[*i, *j] {
                    if c >= a {
                        return Err(RaError::BadColumn { index: c, arity: a });
                    }
                }
                Ok(a + 1)
            }
        }
    }

    /// The least algebra (by the Figure-1 lattice) containing this
    /// expression: `add^l`/`trim^l` force `RA(S_left)`, `↓` forces
    /// `RA(S_len)`, and `σ_α` contributes the structure class of `α`.
    pub fn algebra_class(&self, k: Sym, monoid_cap: usize) -> Result<StructureClass, RaError> {
        let mut class = StructureClass::S;
        self.visit(&mut |e| {
            let c = match e {
                RaExpr::AddLeft(..) | RaExpr::TrimLeft(..) => StructureClass::SLeft,
                // Conclusion extension: conservatively S_len (it subsumes
                // add^l at p = ε; exact lattice position open).
                RaExpr::Down(..) | RaExpr::InsertAt(..) => StructureClass::SLen,
                RaExpr::Select(_, alpha) => match fragment(alpha, k, monoid_cap) {
                    Ok(c) => c,
                    Err(_) => StructureClass::SLen, // conservative
                },
                _ => StructureClass::S,
            };
            class = class.join(c);
        });
        Ok(class)
    }

    /// Visits every subexpression (preorder).
    pub fn visit(&self, f: &mut impl FnMut(&RaExpr)) {
        f(self);
        match self {
            RaExpr::Rel(_) | RaExpr::EpsilonRel => {}
            RaExpr::Select(e, _)
            | RaExpr::Project(e, _)
            | RaExpr::Prefix(e, _)
            | RaExpr::AddRight(e, _, _)
            | RaExpr::AddLeft(e, _, _)
            | RaExpr::TrimLeft(e, _, _)
            | RaExpr::Down(e, _)
            | RaExpr::InsertAt(e, _, _, _) => e.visit(f),
            RaExpr::Product(a, b) | RaExpr::Union(a, b) | RaExpr::Diff(a, b) => {
                a.visit(f);
                b.visit(f);
            }
        }
    }

    /// Number of operators.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

/// Evaluates algebra expressions over a database. Caches the compiled
/// automata of `σ_α` formulas across calls.
pub struct RaEvaluator {
    alphabet: Alphabet,
    cap: usize,
    select_cache: RefCell<HashMap<Formula, CachedSelect>>,
}

struct CachedSelect {
    compiled: Compiled,
    /// Column index for each track of the compiled automaton.
    col_of_track: Vec<usize>,
}

impl RaEvaluator {
    pub fn new(alphabet: Alphabet) -> RaEvaluator {
        RaEvaluator {
            alphabet,
            cap: 2_000_000,
            select_cache: RefCell::new(HashMap::new()),
        }
    }

    fn k(&self) -> Sym {
        self.alphabet.len() as Sym
    }

    /// Evaluates `e` on `db`.
    pub fn eval(&self, e: &RaExpr, db: &Database) -> Result<Relation, RaError> {
        match e {
            RaExpr::Rel(r) => db
                .relation(r)
                .cloned()
                .ok_or_else(|| RaError::UnknownRelation(r.clone())),
            RaExpr::EpsilonRel => Ok(Relation::from_tuples(1, [vec![Str::epsilon()]])),
            RaExpr::Select(inner, alpha) => {
                let rel = self.eval(inner, db)?;
                self.eval_select(&rel, alpha)
            }
            RaExpr::Project(inner, cols) => {
                let rel = self.eval(inner, db)?;
                for &c in cols {
                    if c >= rel.arity() {
                        return Err(RaError::BadColumn {
                            index: c,
                            arity: rel.arity(),
                        });
                    }
                }
                Ok(Relation::from_tuples(
                    cols.len(),
                    rel.iter()
                        .map(|t| cols.iter().map(|&c| t[c].clone()).collect()),
                ))
            }
            RaExpr::Product(a, b) => {
                let (x, y) = (self.eval(a, db)?, self.eval(b, db)?);
                let mut out = Relation::new(x.arity() + y.arity());
                for t in x.iter() {
                    for u in y.iter() {
                        let mut row = t.clone();
                        row.extend(u.iter().cloned());
                        out.insert(row);
                    }
                }
                Ok(out)
            }
            RaExpr::Union(a, b) => {
                let (x, y) = (self.eval(a, db)?, self.eval(b, db)?);
                if x.arity() != y.arity() {
                    return Err(RaError::ArityMismatch {
                        left: x.arity(),
                        right: y.arity(),
                    });
                }
                let mut out = x;
                for t in y.iter() {
                    out.insert(t.clone());
                }
                Ok(out)
            }
            RaExpr::Diff(a, b) => {
                let (x, y) = (self.eval(a, db)?, self.eval(b, db)?);
                if x.arity() != y.arity() {
                    return Err(RaError::ArityMismatch {
                        left: x.arity(),
                        right: y.arity(),
                    });
                }
                Ok(Relation::from_tuples(
                    x.arity(),
                    x.iter().filter(|t| !y.contains(t)).cloned(),
                ))
            }
            RaExpr::Prefix(inner, i) => {
                self.adjoin_multi(inner, *i, db, |s| s.prefixes().collect::<Vec<_>>())
            }
            RaExpr::AddRight(inner, i, a) => {
                let a = *a;
                self.adjoin(inner, *i, db, move |s| s.append(a))
            }
            RaExpr::AddLeft(inner, i, a) => {
                let a = *a;
                self.adjoin(inner, *i, db, move |s| s.prepend(a))
            }
            RaExpr::TrimLeft(inner, i, a) => {
                let a = *a;
                self.adjoin(inner, *i, db, move |s| s.trim_leading(a))
            }
            RaExpr::Down(inner, i) => {
                let alphabet = self.alphabet.clone();
                self.adjoin_multi(inner, *i, db, move |s| {
                    alphabet.strings_up_to(s.len()).collect::<Vec<_>>()
                })
            }
            RaExpr::InsertAt(inner, i, j, a) => {
                let rel = self.eval(inner, db)?;
                for &c in &[*i, *j] {
                    if c >= rel.arity() {
                        return Err(RaError::BadColumn {
                            index: c,
                            arity: rel.arity(),
                        });
                    }
                }
                let mut out = Relation::new(rel.arity() + 1);
                for t in rel.iter() {
                    if let Some(v) = t[*i].insert_after(&t[*j], *a) {
                        let mut row = t.clone();
                        row.push(v);
                        out.insert(row);
                    }
                }
                Ok(out)
            }
        }
    }

    fn adjoin(
        &self,
        inner: &RaExpr,
        i: usize,
        db: &Database,
        f: impl Fn(&Str) -> Str,
    ) -> Result<Relation, RaError> {
        self.adjoin_multi(inner, i, db, move |s| vec![f(s)])
    }

    fn adjoin_multi(
        &self,
        inner: &RaExpr,
        i: usize,
        db: &Database,
        f: impl Fn(&Str) -> Vec<Str>,
    ) -> Result<Relation, RaError> {
        let rel = self.eval(inner, db)?;
        if i >= rel.arity() {
            return Err(RaError::BadColumn {
                index: i,
                arity: rel.arity(),
            });
        }
        let mut out = Relation::new(rel.arity() + 1);
        for t in rel.iter() {
            for v in f(&t[i]) {
                let mut row = t.clone();
                row.push(v);
                out.insert(row);
            }
        }
        Ok(out)
    }

    fn eval_select(&self, rel: &Relation, alpha: &Formula) -> Result<Relation, RaError> {
        let mut cache = self.select_cache.borrow_mut();
        if !cache.contains_key(alpha) {
            let compiler = Compiler::pure(self.k());
            let compiler = Compiler {
                cap: self.cap,
                ..compiler
            };
            let compiled = compiler.compile(alpha)?;
            // Map each track's variable name "cN" to column N.
            let mut col_of_track = Vec::with_capacity(compiled.var_names.len());
            for name in &compiled.var_names {
                let idx: usize = name
                    .strip_prefix('c')
                    .and_then(|r| r.parse().ok())
                    .ok_or_else(|| RaError::BadSelectVar {
                        var: name.clone(),
                        arity: rel.arity(),
                    })?;
                col_of_track.push(idx);
            }
            cache.insert(
                alpha.clone(),
                CachedSelect {
                    compiled,
                    col_of_track,
                },
            );
        }
        let entry = cache.get(alpha).expect("just inserted");
        for &c in &entry.col_of_track {
            if c >= rel.arity() {
                return Err(RaError::BadSelectVar {
                    var: format!("c{c}"),
                    arity: rel.arity(),
                });
            }
        }
        let mut out = Relation::new(rel.arity());
        for t in rel.iter() {
            let args: Vec<&Str> = entry.col_of_track.iter().map(|&c| &t[c]).collect();
            if entry.compiled.auto.accepts(&args) {
                out.insert(t.clone());
            }
        }
        Ok(out)
    }
}

impl fmt::Display for RaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaExpr::Rel(r) => write!(f, "{r}"),
            RaExpr::EpsilonRel => write!(f, "R_ε"),
            RaExpr::Select(e, a) => write!(f, "σ[{a}]({e})"),
            RaExpr::Project(e, cols) => {
                write!(f, "π[")?;
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "]({e})")
            }
            RaExpr::Product(a, b) => write!(f, "({a} × {b})"),
            RaExpr::Union(a, b) => write!(f, "({a} ∪ {b})"),
            RaExpr::Diff(a, b) => write!(f, "({a} − {b})"),
            RaExpr::Prefix(e, i) => write!(f, "prefix_{i}({e})"),
            RaExpr::AddRight(e, i, a) => write!(f, "add^r_{{{i},{a}}}({e})"),
            RaExpr::AddLeft(e, i, a) => write!(f, "add^l_{{{i},{a}}}({e})"),
            RaExpr::TrimLeft(e, i, a) => write!(f, "trim^l_{{{i},{a}}}({e})"),
            RaExpr::Down(e, i) => write!(f, "↓_{i}({e})"),
            RaExpr::InsertAt(e, i, j, a) => write!(f, "ins_{{{i},{j},{a}}}({e})"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    fn s(t: &str) -> Str {
        ab().parse(t).unwrap()
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.insert("R", vec![s("ab"), s("b")]).unwrap();
        db.insert("R", vec![s("a"), s("ba")]).unwrap();
        db.insert("U", vec![s("ab")]).unwrap();
        db.insert("U", vec![s("bb")]).unwrap();
        db
    }

    fn ev() -> RaEvaluator {
        RaEvaluator::new(ab())
    }

    #[test]
    fn base_and_epsilon() {
        let out = ev().eval(&RaExpr::rel("U"), &db()).unwrap();
        assert_eq!(out.len(), 2);
        let out = ev().eval(&RaExpr::EpsilonRel, &db()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&[Str::epsilon()]));
        assert!(ev().eval(&RaExpr::rel("missing"), &db()).is_err());
    }

    #[test]
    fn classical_operators() {
        let e = RaExpr::rel("R").project(vec![1, 0]);
        let out = ev().eval(&e, &db()).unwrap();
        assert!(out.contains(&[s("b"), s("ab")]));

        let e = RaExpr::rel("U").product(RaExpr::rel("U"));
        assert_eq!(ev().eval(&e, &db()).unwrap().len(), 4);

        let e = RaExpr::rel("U").union(RaExpr::rel("R").project(vec![0]));
        assert_eq!(ev().eval(&e, &db()).unwrap().len(), 3); // ab, bb, a

        let e = RaExpr::rel("U").diff(RaExpr::rel("R").project(vec![0]));
        let out = ev().eval(&e, &db()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&[s("bb")]));

        // Arity mismatch is reported.
        let e = RaExpr::rel("U").union(RaExpr::rel("R"));
        assert!(matches!(
            ev().eval(&e, &db()),
            Err(RaError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn selection_with_structure_formula() {
        // σ[c0 ⪯ c1](R): tuples where the first is a prefix of the second.
        let alpha = Formula::prefix(RaExpr::col(0), RaExpr::col(1));
        let e = RaExpr::rel("R").select(alpha);
        let out = ev().eval(&e, &db()).unwrap();
        assert_eq!(out.len(), 0); // neither (ab,b) nor (a,ba): a ⪯ ba? no — b≠a... wait "a" ⪯ "ba" is false.

        // σ[last(c0,'b')](U) keeps "ab" and "bb".
        let alpha = Formula::last_sym(RaExpr::col(0), 1);
        let e = RaExpr::rel("U").select(alpha);
        assert_eq!(ev().eval(&e, &db()).unwrap().len(), 2);

        // Selection formulas may quantify over the infinite domain:
        // σ[∃u (u ≺ c0 ∧ last(u,'a'))](U) — some proper prefix ends in a.
        let alpha = Formula::exists(
            "u",
            Formula::strict_prefix(Term::var("u"), RaExpr::col(0))
                .and(Formula::last_sym(Term::var("u"), 0)),
        );
        let e = RaExpr::rel("U").select(alpha);
        let out = ev().eval(&e, &db()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&[s("ab")]));
    }

    #[test]
    fn string_operators() {
        // prefix_0(U): each string paired with each of its prefixes.
        let e = RaExpr::rel("U").prefix(0);
        let out = ev().eval(&e, &db()).unwrap();
        assert_eq!(out.len(), 6); // 3 prefixes each
        assert!(out.contains(&[s("ab"), s("a")]));
        assert!(out.contains(&[s("bb"), s("")]));

        let e = RaExpr::rel("U").add_right(0, 0);
        let out = ev().eval(&e, &db()).unwrap();
        assert!(out.contains(&[s("ab"), s("aba")]));

        let e = RaExpr::rel("U").add_left(0, 0);
        let out = ev().eval(&e, &db()).unwrap();
        assert!(out.contains(&[s("bb"), s("abb")]));

        let e = RaExpr::rel("U").trim_left(0, 0);
        let out = ev().eval(&e, &db()).unwrap();
        assert!(out.contains(&[s("ab"), s("b")]));
        assert!(out.contains(&[s("bb"), s("")])); // trim misses → ε

        let e = RaExpr::rel("U").down(0);
        let out = ev().eval(&e, &db()).unwrap();
        // each of the two strings (length 2) × 7 strings of length ≤ 2
        assert_eq!(out.len(), 14);
    }

    #[test]
    fn insert_at_operator() {
        // ins_{0,1,b}(U × prefix-col): build pairs (s, p) via prefix then
        // insert 'b' after p.
        let e = RaExpr::rel("U").prefix(0).insert_at(0, 1, 1);
        let out = ev().eval(&e, &db()).unwrap();
        // Every row satisfies the defining equation.
        for t in out.iter() {
            assert_eq!(t[0].insert_after(&t[1], 1), Some(t[2].clone()));
        }
        // "ab" with p="a" → "abb"... wait: insert after "a" in "ab" = a b b? a·b·b: yes "abb".
        assert!(out.contains(&[s("ab"), s("a"), s("abb")]));
        assert!(out.contains(&[s("bb"), s(""), s("bbb")]));
        // Arity/static checks.
        let schema = db().schema();
        assert_eq!(e.arity(&schema).unwrap(), 3);
        assert!(RaExpr::rel("U").insert_at(0, 5, 0).arity(&schema).is_err());
        assert_eq!(e.algebra_class(2, 100_000).unwrap(), StructureClass::SLen);
    }

    #[test]
    fn algebra_classes() {
        let base = RaExpr::rel("U").prefix(0).add_right(1, 0);
        assert_eq!(base.algebra_class(2, 100_000).unwrap(), StructureClass::S);
        let left = RaExpr::rel("U").add_left(0, 1);
        assert_eq!(
            left.algebra_class(2, 100_000).unwrap(),
            StructureClass::SLeft
        );
        let len = RaExpr::rel("U").down(0);
        assert_eq!(len.algebra_class(2, 100_000).unwrap(), StructureClass::SLen);
        // σ with an el() formula → S_len.
        let sel = RaExpr::rel("R").select(Formula::eq_len(RaExpr::col(0), RaExpr::col(1)));
        assert_eq!(sel.algebra_class(2, 100_000).unwrap(), StructureClass::SLen);
    }

    #[test]
    fn static_arity() {
        let schema = db().schema();
        assert_eq!(RaExpr::rel("R").arity(&schema).unwrap(), 2);
        assert_eq!(RaExpr::rel("R").prefix(0).arity(&schema).unwrap(), 3);
        assert!(RaExpr::rel("R").prefix(5).arity(&schema).is_err());
        assert!(RaExpr::rel("U")
            .union(RaExpr::rel("R"))
            .arity(&schema)
            .is_err());
    }

    #[test]
    fn select_bad_variable_is_reported() {
        let alpha = Formula::last_sym(Term::var("weird"), 0);
        let e = RaExpr::rel("U").select(alpha);
        assert!(matches!(
            ev().eval(&e, &db()),
            Err(RaError::BadSelectVar { .. })
        ));
        // Column out of range for the operand.
        let alpha = Formula::last_sym(RaExpr::col(3), 0);
        let e = RaExpr::rel("U").select(alpha);
        assert!(matches!(
            ev().eval(&e, &db()),
            Err(RaError::BadSelectVar { .. })
        ));
    }
}
