//! Databases: finite relations over `Σ*`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use strcalc_alphabet::{Alphabet, Str};

/// Errors from database manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Tuple arity differs from the relation's arity.
    ArityMismatch {
        relation: String,
        expected: usize,
        got: usize,
    },
    /// Unknown relation name.
    UnknownRelation(String),
    /// Relations must have positive arity (`p_i > 0` in the paper).
    ZeroArity(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for {relation}: expected {expected}, got {got}"
            ),
            DbError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            DbError::ZeroArity(r) => write!(f, "relation {r} must have positive arity"),
        }
    }
}

impl std::error::Error for DbError {}

/// A database schema: relation names with arities.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    arities: BTreeMap<String, usize>,
}

impl Schema {
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Adds (or confirms) a relation.
    pub fn add(&mut self, name: impl Into<String>, arity: usize) -> Result<(), DbError> {
        let name = name.into();
        if arity == 0 {
            return Err(DbError::ZeroArity(name));
        }
        match self.arities.get(&name) {
            Some(&a) if a != arity => Err(DbError::ArityMismatch {
                relation: name,
                expected: a,
                got: arity,
            }),
            _ => {
                self.arities.insert(name, arity);
                Ok(())
            }
        }
    }

    pub fn arity(&self, name: &str) -> Option<usize> {
        self.arities.get(name).copied()
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.arities.keys().map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.arities.len()
    }

    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }

    /// `true` iff every relation is unary — the hypothesis of
    /// Proposition 3 (linear-time Boolean `RC(S)` evaluation).
    pub fn is_unary(&self) -> bool {
        self.arities.values().all(|&a| a == 1)
    }

    /// Stable fingerprint of the schema (relation names and arities).
    /// Cache-key component: compiled artifacts for one schema can be
    /// invalidated together when the schema changes.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = strcalc_logic::Fp::new();
        fp.u64(self.arities.len() as u64);
        for (name, &arity) in &self.arities {
            fp.str(name).u64(arity as u64);
        }
        fp.finish()
    }
}

/// One finite relation: a set of equal-arity tuples, kept sorted
/// (shortlex componentwise) for determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Vec<Str>>,
}

impl Relation {
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Builds a relation from tuples (all must share the given arity).
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Vec<Str>>) -> Relation {
        let mut r = Relation::new(arity);
        for t in tuples {
            assert_eq!(t.len(), arity, "tuple arity mismatch");
            r.tuples.insert(t);
        }
        r
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    pub fn contains(&self, t: &[Str]) -> bool {
        self.tuples.contains(t)
    }

    pub fn insert(&mut self, t: Vec<Str>) -> bool {
        assert_eq!(t.len(), self.arity, "tuple arity mismatch");
        self.tuples.insert(t)
    }

    pub fn iter(&self) -> impl Iterator<Item = &Vec<Str>> {
        self.tuples.iter()
    }

    pub fn tuples(&self) -> &BTreeSet<Vec<Str>> {
        &self.tuples
    }
}

/// A database instance: named relations plus the derived active domain.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Database {
    rels: BTreeMap<String, Relation>,
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    /// Inserts a tuple, creating the relation (with the tuple's arity) on
    /// first use.
    pub fn insert(&mut self, name: impl Into<String>, tuple: Vec<Str>) -> Result<(), DbError> {
        let name = name.into();
        if tuple.is_empty() {
            return Err(DbError::ZeroArity(name));
        }
        match self.rels.get_mut(&name) {
            Some(r) => {
                if r.arity() != tuple.len() {
                    return Err(DbError::ArityMismatch {
                        relation: name,
                        expected: r.arity(),
                        got: tuple.len(),
                    });
                }
                r.insert(tuple);
            }
            None => {
                let mut r = Relation::new(tuple.len());
                r.insert(tuple);
                self.rels.insert(name, r);
            }
        }
        Ok(())
    }

    /// Inserts many unary tuples parsed from text (test/example helper).
    pub fn insert_unary_parsed(
        &mut self,
        alphabet: &Alphabet,
        name: &str,
        words: &[&str],
    ) -> Result<(), DbError> {
        for w in words {
            let s = alphabet
                .parse(w)
                .unwrap_or_else(|e| panic!("bad literal {w:?}: {e}"));
            self.insert(name, vec![s])?;
        }
        Ok(())
    }

    /// Declares an empty relation of the given arity.
    pub fn declare(&mut self, name: impl Into<String>, arity: usize) -> Result<(), DbError> {
        let name = name.into();
        if arity == 0 {
            return Err(DbError::ZeroArity(name));
        }
        match self.rels.get(&name) {
            Some(r) if r.arity() != arity => Err(DbError::ArityMismatch {
                relation: name,
                expected: r.arity(),
                got: arity,
            }),
            Some(_) => Ok(()),
            None => {
                self.rels.insert(name, Relation::new(arity));
                Ok(())
            }
        }
    }

    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.rels.get(name)
    }

    pub fn relations(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.rels.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// The schema induced by the stored relations.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for (n, r) in &self.rels {
            s.add(n.clone(), r.arity())
                .expect("consistent by construction");
        }
        s
    }

    /// The active domain `adom(D)`: every string appearing in any tuple.
    pub fn adom(&self) -> BTreeSet<Str> {
        let mut out = BTreeSet::new();
        for r in self.rels.values() {
            for t in r.iter() {
                out.extend(t.iter().cloned());
            }
        }
        out
    }

    /// Length of the longest active-domain string (0 for empty DB).
    pub fn max_len(&self) -> usize {
        self.adom().iter().map(Str::len).max().unwrap_or(0)
    }

    /// Total number of tuples across relations.
    pub fn total_tuples(&self) -> usize {
        self.rels.values().map(Relation::len).sum()
    }

    /// Stable fingerprint of the full database **content** (names,
    /// arities, and every tuple). The compilation cache must key on this
    /// rather than the schema alone: compiled automata inline relation
    /// tuples and the active domain, so any content change invalidates
    /// them. `BTreeMap`/`BTreeSet` iteration order makes it canonical.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = strcalc_logic::Fp::new();
        fp.u64(self.rels.len() as u64);
        for (name, rel) in &self.rels {
            fp.str(name).u64(rel.arity() as u64).u64(rel.len() as u64);
            for tuple in rel.iter() {
                for s in tuple {
                    fp.bytes(s.syms());
                }
            }
        }
        fp.finish()
    }

    /// The **width** of the active domain (Section 5.2): the maximum size
    /// of a subset of `adom(D)` pairwise comparable by the prefix
    /// relation — equivalently, the longest chain in the prefix order.
    pub fn adom_width(&self) -> usize {
        // Sort shortlex; for each string, longest chain ending at it.
        let adom: Vec<Str> = self.adom().into_iter().collect();
        let mut best = vec![1usize; adom.len()];
        let mut overall = 0;
        for i in 0..adom.len() {
            for j in 0..i {
                if adom[j].is_strict_prefix_of(&adom[i]) {
                    best[i] = best[i].max(best[j] + 1);
                }
            }
            overall = overall.max(best[i]);
        }
        overall
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    fn s(t: &str) -> Str {
        ab().parse(t).unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut db = Database::new();
        db.insert("R", vec![s("ab"), s("b")]).unwrap();
        db.insert("R", vec![s("a"), s("")]).unwrap();
        db.insert("U", vec![s("ab")]).unwrap();
        let r = db.relation("R").unwrap();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[s("ab"), s("b")]));
        assert!(!r.contains(&[s("b"), s("ab")]));
        assert!(db.relation("missing").is_none());
    }

    #[test]
    fn arity_is_enforced() {
        let mut db = Database::new();
        db.insert("R", vec![s("a")]).unwrap();
        assert!(matches!(
            db.insert("R", vec![s("a"), s("b")]),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(db.insert("Z", vec![]), Err(DbError::ZeroArity(_))));
    }

    #[test]
    fn adom_and_maxlen() {
        let mut db = Database::new();
        db.insert("R", vec![s("ab"), s("b")]).unwrap();
        db.insert("U", vec![s("bbb")]).unwrap();
        let adom = db.adom();
        assert_eq!(adom.len(), 3);
        assert_eq!(db.max_len(), 3);
        assert_eq!(db.total_tuples(), 2);
    }

    #[test]
    fn schema_and_unary() {
        let mut db = Database::new();
        db.insert("U", vec![s("a")]).unwrap();
        db.insert("V", vec![s("b")]).unwrap();
        assert!(db.schema().is_unary());
        db.insert("R", vec![s("a"), s("b")]).unwrap();
        assert!(!db.schema().is_unary());
        assert_eq!(db.schema().arity("R"), Some(2));
    }

    #[test]
    fn fingerprints_track_schema_and_content() {
        let mut a = Database::new();
        a.insert("U", vec![s("a")]).unwrap();
        let mut b = Database::new();
        b.insert("U", vec![s("a")]).unwrap();
        assert_eq!(a.schema().fingerprint(), b.schema().fingerprint());
        assert_eq!(a.fingerprint(), b.fingerprint());

        // Same schema, different content: schema fp agrees, db fp differs.
        b.insert("U", vec![s("b")]).unwrap();
        assert_eq!(a.schema().fingerprint(), b.schema().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());

        // Different schema.
        let mut c = Database::new();
        c.insert("V", vec![s("a")]).unwrap();
        assert_ne!(a.schema().fingerprint(), c.schema().fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn width_computation() {
        let mut db = Database::new();
        // {a, ab, abb} is a prefix chain of length 3; {b} incomparable.
        for w in ["a", "ab", "abb", "b"] {
            db.insert("U", vec![s(w)]).unwrap();
        }
        assert_eq!(db.adom_width(), 3);

        // Width-1 database: pairwise incomparable strings.
        let mut db1 = Database::new();
        for w in ["aa", "ab", "ba", "bb"] {
            db1.insert("U", vec![s(w)]).unwrap();
        }
        assert_eq!(db1.adom_width(), 1);
    }

    #[test]
    fn declare_empty_relation() {
        let mut db = Database::new();
        db.declare("R", 2).unwrap();
        assert_eq!(db.relation("R").unwrap().len(), 0);
        assert!(db.declare("R", 3).is_err());
    }
}
