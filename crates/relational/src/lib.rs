//! String databases and the paper's extended relational algebras.
//!
//! A database is a finite set of finite relations over `Σ*`
//! ([`Database`]). On top of the classical algebra (`σ`, `π`, `×`, `−`,
//! `∪`), Section 6.2 and 7.1 of the paper add:
//!
//! * `R_ε` — the constant relation `{(ε)}` ([`RaExpr::EpsilonRel`]);
//! * `σ_α` — selection by an arbitrary **pure** structure formula `α`
//!   (crucially, `α` does not refer to the database); the formula language
//!   of `α` is what distinguishes `RA(S)` from `RA(S_len)` etc.;
//! * `prefix_i` — adjoin a column ranging over the prefixes of column `i`;
//! * `add^r_{i,a}` — adjoin `s_i · a` (for `RA(S)` and all extensions);
//! * `add^l_{i,a}` — adjoin `a · s_i` (for `RA(S_left)`);
//! * `trim^l_{i,a}` — adjoin `s_i − a` (for `RA(S_left)`);
//! * `↓_i` — adjoin a column ranging over **all** strings of length at
//!   most `|s_i|` (for `RA(S_len)`; exponential, and the paper notes this
//!   is unavoidable because `RC(S_len)` contains NP-hard safe queries).
//!
//! [`RaExpr::algebra_class`] computes which algebra an expression lives
//! in, mirroring [`StructureClass`](strcalc_logic::StructureClass) on the
//! calculus side; Theorems 4 and 8 (safe calculus = algebra) are
//! exercised by the translation module in `strcalc-core` and the
//! `algebra_equiv` integration tests.

// Panic-audit round 7: the relational layer backs every execution
// strategy — arity and name errors are data-dependent and must surface
// as `DbError`/`RaError`, never as a panic.
#![deny(clippy::unwrap_used)]

pub mod algebra;
pub mod database;

pub use algebra::{RaError, RaEvaluator, RaExpr};
pub use database::{Database, DbError, Relation, Schema};
