//! Property-based tests: classical relational-algebra laws hold for the
//! extended algebra's evaluator, and the string operators satisfy their
//! defining equations pointwise.

use proptest::prelude::*;
use strcalc_alphabet::{Alphabet, Str};
use strcalc_logic::Formula;
use strcalc_relational::{Database, RaEvaluator, RaExpr};

fn arb_str() -> impl Strategy<Value = Str> {
    prop::collection::vec(0u8..2, 0..=4).prop_map(Str::from_syms)
}

fn arb_db() -> impl Strategy<Value = Database> {
    (
        prop::collection::vec((arb_str(), arb_str()), 0..6),
        prop::collection::vec(arb_str(), 0..6),
    )
        .prop_map(|(pairs, singles)| {
            let mut db = Database::new();
            db.declare("R", 2).unwrap();
            db.declare("U", 1).unwrap();
            for (a, b) in pairs {
                db.insert("R", vec![a, b]).unwrap();
            }
            for s in singles {
                db.insert("U", vec![s]).unwrap();
            }
            db
        })
}

fn ev() -> RaEvaluator {
    RaEvaluator::new(Alphabet::ab())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn select_conjunction_is_composition(db in arb_db()) {
        let alpha = Formula::last_sym(RaExpr::col(0), 0);
        let beta = Formula::prefix(RaExpr::col(0), RaExpr::col(1));
        let both = RaExpr::rel("R").select(alpha.clone().and(beta.clone()));
        let chained = RaExpr::rel("R").select(alpha).select(beta);
        prop_assert_eq!(ev().eval(&both, &db).unwrap(), ev().eval(&chained, &db).unwrap());
    }

    #[test]
    fn union_is_commutative_and_idempotent(db in arb_db()) {
        let a = RaExpr::rel("U");
        let b = RaExpr::rel("R").project(vec![1]);
        let ab = a.clone().union(b.clone());
        let ba = b.clone().union(a.clone());
        prop_assert_eq!(ev().eval(&ab, &db).unwrap(), ev().eval(&ba, &db).unwrap());
        let aa = a.clone().union(a.clone());
        prop_assert_eq!(ev().eval(&aa, &db).unwrap(), ev().eval(&a, &db).unwrap());
    }

    #[test]
    fn difference_laws(db in arb_db()) {
        let a = RaExpr::rel("U");
        let b = RaExpr::rel("R").project(vec![0]);
        // (A − B) ∩ B = ∅, expressed as ((A−B) − (A−B−B)) emptiness…
        // simpler: (A − B) − B = A − B.
        let once = a.clone().diff(b.clone());
        let twice = once.clone().diff(b);
        prop_assert_eq!(ev().eval(&once, &db).unwrap(), ev().eval(&twice, &db).unwrap());
        // A − A = ∅.
        let empty = a.clone().diff(a);
        prop_assert_eq!(ev().eval(&empty, &db).unwrap().len(), 0);
    }

    #[test]
    fn projection_composes(db in arb_db()) {
        let e = RaExpr::rel("R").product(RaExpr::rel("U"));
        let direct = e.clone().project(vec![2, 0]);
        let composed = e.project(vec![0, 2]).project(vec![1, 0]);
        prop_assert_eq!(ev().eval(&direct, &db).unwrap(), ev().eval(&composed, &db).unwrap());
    }

    #[test]
    fn string_operators_satisfy_their_equations(db in arb_db()) {
        let evl = ev();
        // add^r then trim-check: last column equals col·a.
        let e = RaExpr::rel("U").add_right(0, 1);
        for t in evl.eval(&e, &db).unwrap().iter() {
            prop_assert_eq!(t[1].clone(), t[0].append(1));
        }
        let e = RaExpr::rel("U").add_left(0, 0);
        for t in evl.eval(&e, &db).unwrap().iter() {
            prop_assert_eq!(t[1].clone(), t[0].prepend(0));
        }
        let e = RaExpr::rel("U").trim_left(0, 0);
        for t in evl.eval(&e, &db).unwrap().iter() {
            prop_assert_eq!(t[1].clone(), t[0].trim_leading(0));
        }
        // prefix_i adjoins exactly the prefixes.
        let e = RaExpr::rel("U").prefix(0);
        let out = evl.eval(&e, &db).unwrap();
        if let Some(u) = db.relation("U") {
            let expected: usize = u.iter().map(|t| t[0].len() + 1).sum();
            prop_assert_eq!(out.len(), expected - count_shared_prefix_dups(u));
        }
        // ↓ adjoins exactly the strings of bounded length.
        let e = RaExpr::rel("U").down(0);
        for t in evl.eval(&e, &db).unwrap().iter() {
            prop_assert!(t[1].len() <= t[0].len());
        }
    }

    #[test]
    fn product_cardinality(db in arb_db()) {
        let e = RaExpr::rel("U").product(RaExpr::rel("R"));
        let n = ev().eval(&e, &db).unwrap().len();
        let nu = db.relation("U").map(|r| r.len()).unwrap_or(0);
        let nr = db.relation("R").map(|r| r.len()).unwrap_or(0);
        prop_assert_eq!(n, nu * nr);
    }
}

/// `prefix_0(U)` produces (s, p) pairs; duplicates only arise from
/// identical (s, p) rows, which cannot happen for distinct s — so the
/// expected count is exactly Σ (|s|+1). Kept as a function for clarity.
fn count_shared_prefix_dups(_u: &strcalc_relational::Relation) -> usize {
    0
}
