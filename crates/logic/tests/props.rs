//! Property-based tests for the formula layer: the transformations
//! (NNF, bound-variable freshening, parser round trips) preserve
//! *semantics*, checked through the automaton compiler.

use proptest::prelude::*;
use strcalc_alphabet::{Alphabet, Str};
use strcalc_logic::transform::{freshen_bound, nnf, simplify};
use strcalc_logic::{Compiler, Formula, Term};

/// Random formulas over one or two free variables in the S/S_len
/// signature (no database relations — compiled with the pure compiler).
fn arb_formula() -> impl Strategy<Value = Formula> {
    let x = || Term::var("x");
    let y = || Term::var("y");
    let leaf = prop_oneof![
        Just(Formula::prefix(x(), y())),
        Just(Formula::strict_prefix(x(), y())),
        Just(Formula::eq(x(), y())),
        Just(Formula::eq_len(x(), y())),
        Just(Formula::last_sym(x(), 0)),
        Just(Formula::last_sym(y(), 1)),
        Just(Formula::lex_leq(x(), y())),
        Just(Formula::cover(x(), y())),
        Just(Formula::True),
        Just(Formula::False),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.iff(b)),
            inner.clone().prop_map(Formula::not),
            // Quantify y (possibly shadowing) — keeps x free.
            inner.prop_map(|f| Formula::exists("y", f)),
        ]
    })
}

fn strings(n: usize) -> Vec<Str> {
    Alphabet::ab().strings_up_to(n).collect()
}

/// Compiles and compares two formulas pointwise on small assignments.
/// Both sides are pinned to the free variables {x, y} (transformations
/// like `simplify` may legitimately drop a variable whose constraint
/// became vacuous — `φ(x) ∧ False ≡ False`).
fn semantically_equal(f: &Formula, g: &Formula) -> bool {
    let pin = |h: &Formula| {
        h.clone()
            .and(Formula::eq(Term::var("x"), Term::var("x")))
            .and(Formula::eq(Term::var("y"), Term::var("y")))
    };
    let cf = Compiler::pure(2).compile(&pin(f)).expect("compiles");
    let cg = Compiler::pure(2).compile(&pin(g)).expect("compiles");
    assert_eq!(cf.var_names, cg.var_names, "free variables must agree");
    let arity = cf.var_names.len();
    match arity {
        0 => cf.auto.is_true() == cg.auto.is_true(),
        1 => strings(3)
            .iter()
            .all(|a| cf.auto.accepts(&[a]) == cg.auto.accepts(&[a])),
        2 => strings(3).iter().all(|a| {
            strings(3)
                .iter()
                .all(|b| cf.auto.accepts(&[a, b]) == cg.auto.accepts(&[a, b]))
        }),
        _ => unreachable!("at most two free variables in the corpus"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nnf_preserves_semantics(f in arb_formula()) {
        let g = nnf(&f);
        // NNF must not introduce implications/iffs or buried negations.
        g.visit(&mut |sub| {
            assert!(!matches!(sub, Formula::Implies(..) | Formula::Iff(..)));
            if let Formula::Not(inner) = sub {
                assert!(matches!(**inner, Formula::Atom(_)), "negation not at atom");
            }
        });
        prop_assert!(semantically_equal(&f, &g));
    }

    #[test]
    fn freshen_preserves_semantics(f in arb_formula()) {
        let g = freshen_bound(&f);
        prop_assert!(semantically_equal(&f, &g));
    }

    #[test]
    fn simplify_preserves_semantics(f in arb_formula()) {
        let g = simplify(&f);
        prop_assert!(semantically_equal(&f, &g));
    }

    #[test]
    fn render_parse_round_trip(f in arb_formula()) {
        let alphabet = Alphabet::ab();
        let text = f.render(&alphabet);
        let parsed = strcalc_logic::parse_formula(&alphabet, &text)
            .unwrap_or_else(|e| panic!("render produced unparsable text {text:?}: {e}"));
        // The AST may differ in association; compare semantics.
        prop_assert!(semantically_equal(&f, &parsed));
    }

    #[test]
    fn double_negation_is_identity(f in arb_formula()) {
        let g = f.clone().not().not();
        prop_assert!(semantically_equal(&f, &g));
    }

    #[test]
    fn de_morgan(f in arb_formula(), g in arb_formula()) {
        let lhs = f.clone().and(g.clone()).not();
        let rhs = f.not().or(g.not());
        prop_assert!(semantically_equal(&lhs, &rhs));
    }
}
