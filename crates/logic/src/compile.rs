//! Compilation of formulas to synchronized automata.
//!
//! This is the exact-evaluation pipeline of the reproduction: a formula
//! over any of the tame structures (`S`, `S_left`, `S_reg`, `S_len`)
//! compiles to a [`SyncNfa`] recognizing exactly its set of satisfying
//! assignments — the classical decidability argument for first-order
//! logic over automatic structures, run as code.
//!
//! Database relations are abstracted behind [`RelResolver`]: the core
//! crate resolves them to the (finite, hence regular) tuple sets of a
//! concrete database; the algebra's `σ_α` selections compile *pure*
//! formulas with [`no_relations`].
//!
//! Concatenation atoms are rejected: the graph of `·` is not a
//! synchronized-regular relation, which is precisely why `RC_concat`
//! falls outside this machinery (Proposition 1 of the paper).

use std::collections::HashMap;

use strcalc_alphabet::{Str, Sym};
use strcalc_synchro::nfa::Var;
use strcalc_synchro::{atoms, SyncNfa, SynchroError};

use crate::formula::{Atom, Formula, Restrict, Term};
use crate::transform::{freshen_bound, lower_terms};

/// How a relation atom resolves.
pub enum Resolved {
    /// A finite tuple set (the ordinary database case).
    Tuples(Vec<Vec<Str>>),
    /// An arbitrary synchronized-regular relation, as an automaton whose
    /// tracks (vars `0..arity`) are the relation's components in order.
    /// This is how *virtual* relations — e.g. a query output that may be
    /// infinite — are plugged into a formula (used by the paper's
    /// finiteness sentence for `S_len`, Section 6.1).
    Automaton(SyncNfa),
}

/// Resolves database relation atoms to tuple sets or automata.
pub trait RelResolver {
    /// The contents of relation `name`, or an error if unknown / wrong
    /// arity.
    fn resolve(&self, name: &str, arity: usize) -> Result<Resolved, CompileError>;
}

/// A resolver for pure structure formulas: any relation atom is an error.
pub struct NoRelations;

impl RelResolver for NoRelations {
    fn resolve(&self, name: &str, _arity: usize) -> Result<Resolved, CompileError> {
        Err(CompileError::UnknownRelation(name.to_string()))
    }
}

/// Convenience constructor for [`NoRelations`].
pub fn no_relations() -> NoRelations {
    NoRelations
}

/// Compilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A relation atom had no resolution (pure context or unknown name).
    UnknownRelation(String),
    /// A relation atom used a known relation with the wrong number of
    /// arguments: `expected` is the relation's declared arity, `found`
    /// the arity the formula used it with.
    ArityMismatch {
        name: String,
        expected: usize,
        found: usize,
    },
    /// Concatenation is not a synchronized-regular relation (Prop. 1).
    ConcatNotAutomatic,
    /// A restricted quantifier was used without an active domain.
    RestrictedWithoutAdom,
    /// The underlying automata layer failed (track limit, symbol cap…).
    Synchro(SynchroError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            CompileError::ArityMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "relation {name} has arity {expected} but was used with {found} argument(s)"
            ),
            CompileError::ConcatNotAutomatic => write!(
                f,
                "concatenation atoms cannot be compiled to synchronized automata \
                 (RC_concat is computationally complete; see Proposition 1)"
            ),
            CompileError::RestrictedWithoutAdom => write!(
                f,
                "restricted quantifier used but no active domain was supplied"
            ),
            CompileError::Synchro(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<SynchroError> for CompileError {
    fn from(e: SynchroError) -> Self {
        CompileError::Synchro(e)
    }
}

/// Compilation context.
pub struct Compiler<'a> {
    /// Alphabet size.
    pub k: Sym,
    /// Symbol cap for complements (see [`SyncNfa::complement`]).
    pub cap: usize,
    /// Relation resolver.
    pub rels: &'a dyn RelResolver,
    /// Active-domain strings for restricted quantifiers (`∃x ∈ adom`,
    /// `∃x ∈ dom↓`, `∃|x| ≤ adom`). `None` forbids restricted quantifiers.
    pub adom: Option<&'a [Str]>,
    /// Minimize intermediate automata when they exceed this many states.
    pub minimize_threshold: usize,
}

/// The result of compilation: the automaton plus the sorted list of free
/// variable names, matching its track order.
pub struct Compiled {
    pub auto: SyncNfa,
    /// Free variable names in track order (sorted).
    pub var_names: Vec<String>,
}

impl<'a> Compiler<'a> {
    /// A compiler with default settings for pure formulas.
    pub fn pure(k: Sym) -> Compiler<'static> {
        Compiler {
            k,
            cap: 2_000_000,
            rels: &NoRelations,
            adom: None,
            minimize_threshold: 64,
        }
    }

    /// Compiles `f`, returning the automaton over `f`'s free variables.
    pub fn compile(&self, f: &Formula) -> Result<Compiled, CompileError> {
        // Normalize: function terms lowered to relational atoms, bound
        // variables distinct.
        let f = freshen_bound(&lower_terms(f));
        // Intern every variable: free variables first, in sorted order, so
        // the output track order is the sorted free-variable order.
        let mut intern: HashMap<String, Var> = HashMap::new();
        let free: Vec<String> = f.free_vars().into_iter().collect();
        for (i, v) in free.iter().enumerate() {
            intern.insert(v.clone(), i as Var);
        }
        let mut next: Var = free.len() as Var;
        for v in f.all_vars() {
            intern.entry(v).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
        }
        let mut st = State {
            k: self.k,
            cap: self.cap,
            rels: self.rels,
            adom: self.adom,
            minimize_threshold: self.minimize_threshold,
            intern,
            next_aux: next + 1_000,
        };
        let auto = st.go(&f)?;
        // ∃-eliminated unused free variables: the automaton's vars may be
        // a subset of the interned free ids; cylindrify back up so callers
        // always see every free variable as a track.
        let want: Vec<Var> = (0..free.len() as Var).collect();
        let auto = auto.cylindrify(&want)?;
        Ok(Compiled {
            auto,
            var_names: free,
        })
    }
}

struct State<'a> {
    k: Sym,
    cap: usize,
    rels: &'a dyn RelResolver,
    adom: Option<&'a [Str]>,
    minimize_threshold: usize,
    intern: HashMap<String, Var>,
    next_aux: Var,
}

impl<'a> State<'a> {
    fn fresh_aux(&mut self) -> Var {
        let v = self.next_aux;
        self.next_aux += 1;
        v
    }

    fn var_of(&self, name: &str) -> Var {
        *self
            .intern
            .get(name)
            .expect("freshen_bound interned every variable")
    }

    fn maybe_min(&self, a: SyncNfa) -> SyncNfa {
        if a.num_states() > self.minimize_threshold {
            a.minimize()
        } else {
            a
        }
    }

    fn go(&mut self, f: &Formula) -> Result<SyncNfa, CompileError> {
        let out = match f {
            Formula::True => SyncNfa::true_rel(self.k),
            Formula::False => SyncNfa::false_rel(self.k),
            Formula::Atom(a) => self.atom(a)?,
            Formula::Not(g) => {
                let inner = self.go(g)?;
                inner.complement(self.cap)?
            }
            Formula::And(..) => {
                // Flatten the conjunction chain and join greedily,
                // smallest automata first — the classical join-ordering
                // move. Without this, a left-associated `U(x) ∧ U(y) ∧
                // x<y` would materialize the full U×U product before the
                // selective atom gets a chance to prune it.
                let mut conjuncts: Vec<&Formula> = Vec::new();
                fn flatten<'f>(f: &'f Formula, out: &mut Vec<&'f Formula>) {
                    match f {
                        Formula::And(a, b) => {
                            flatten(a, out);
                            flatten(b, out);
                        }
                        other => out.push(other),
                    }
                }
                flatten(f, &mut conjuncts);
                let mut autos: Vec<SyncNfa> = conjuncts
                    .into_iter()
                    .map(|c| self.go(c))
                    .collect::<Result<_, _>>()?;
                while autos.len() > 1 {
                    // Pick the smallest automaton, then its smallest
                    // partner that shares a variable (avoiding cartesian
                    // blow-ups); fall back to the overall smallest.
                    autos.sort_by_key(|a| std::cmp::Reverse(a.num_states()));
                    let x = autos.pop().expect("len > 1");
                    let partner = autos
                        .iter()
                        .rposition(|a| a.vars.iter().any(|v| x.vars.contains(v)))
                        .unwrap_or(autos.len() - 1);
                    let y = autos.remove(partner);
                    let joined = self.maybe_min(x.intersect(&y)?);
                    autos.push(joined);
                }
                autos.pop().expect("nonempty conjunction")
            }
            Formula::Or(a, b) => self.go(a)?.union(&self.go(b)?)?,
            Formula::Implies(a, b) => {
                let na = self.go(a)?.complement(self.cap)?;
                na.union(&self.go(b)?)?
            }
            Formula::Iff(a, b) => {
                let (x, y) = (self.go(a)?, self.go(b)?);
                let pos = x.intersect(&y)?;
                let neg = x
                    .complement(self.cap)?
                    .intersect(&y.complement(self.cap)?)?;
                pos.union(&neg)?
            }
            Formula::Exists(v, g) => {
                let var = self.var_of(v);
                let body = self.go(g)?;
                if body.vars.contains(&var) {
                    body.project(var)?
                } else {
                    body // ∃x φ ≡ φ when x is not free in φ
                }
            }
            Formula::Forall(v, g) => {
                let var = self.var_of(v);
                let body = self.go(g)?;
                if body.vars.contains(&var) {
                    let neg = body.complement(self.cap)?;
                    let ex = neg.project(var)?;
                    ex.complement(self.cap)?
                } else {
                    body
                }
            }
            Formula::ExistsR(r, v, g) => {
                let var = self.var_of(v);
                let body = self.go(g)?;
                let range = self.range_automaton(*r, var, &body)?;
                let restricted = body.intersect(&range)?;
                if restricted.vars.contains(&var) {
                    restricted.project(var)?
                } else {
                    restricted
                }
            }
            Formula::ForallR(r, v, g) => {
                // ∀R x φ ≡ ¬ ∃R x ¬φ.
                let var = self.var_of(v);
                let body = self.go(g)?;
                let neg = body.complement(self.cap)?;
                let range = self.range_automaton(*r, var, &neg)?;
                let restricted = neg.intersect(&range)?;
                let ex = if restricted.vars.contains(&var) {
                    restricted.project(var)?
                } else {
                    restricted
                };
                ex.complement(self.cap)?
            }
        };
        Ok(self.maybe_min(out))
    }

    /// The range of a restricted quantifier as an automaton over `var`
    /// (and possibly the enclosing free variables, for `dom↓` / length
    /// ranges, which mention them).
    fn range_automaton(
        &mut self,
        r: Restrict,
        var: Var,
        body: &SyncNfa,
    ) -> Result<SyncNfa, CompileError> {
        let adom = self.adom.ok_or(CompileError::RestrictedWithoutAdom)?;
        // The "enclosing free variables" are the body's other tracks.
        let scope: Vec<Var> = body.vars.iter().copied().filter(|&w| w != var).collect();
        match r {
            Restrict::Active => Ok(atoms::finite_set(self.k, var, adom.iter())),
            Restrict::PrefixDom => {
                // x ⪯ (some adom string) ∨ x ⪯ (some scope variable).
                let closure = strcalc_alphabet::prefix_closure(adom.iter());
                let strings: Vec<Str> = closure.into_iter().collect();
                let mut range = atoms::finite_set(self.k, var, strings.iter());
                for &w in &scope {
                    range = range.union(&atoms::prefix(self.k, var, w))?;
                }
                Ok(range)
            }
            Restrict::LengthDom => {
                // |x| ≤ max adom length ∨ |x| ≤ |scope var|.
                let max_len = adom.iter().map(Str::len).max();
                let mut range = match max_len {
                    Some(n) => length_at_most(self.k, var, n),
                    None => SyncNfa::empty(self.k, vec![var]),
                };
                for &w in &scope {
                    range = range.union(&atoms::shorter_eq(self.k, var, w))?;
                }
                Ok(range)
            }
        }
    }

    fn atom(&mut self, a: &Atom) -> Result<SyncNfa, CompileError> {
        // Uniform scheme: give every term position a fresh internal track,
        // build the relation over those, then constrain constants and
        // repeated variables, project the auxiliaries, and rename the
        // survivors to the interned variable ids.
        let terms = a.terms();
        let pos_ids: Vec<Var> = terms.iter().map(|_| self.fresh_aux()).collect();

        let mut auto = match a {
            Atom::Rel(name, ts) => match self.rels.resolve(name, ts.len())? {
                Resolved::Tuples(tuples) => {
                    atoms::finite_relation(self.k, pos_ids.clone(), &tuples)
                }
                Resolved::Automaton(nfa) => {
                    // Track i of the virtual relation is component i;
                    // rename onto the (increasing) position ids.
                    debug_assert_eq!(nfa.arity(), ts.len(), "virtual relation arity");
                    nfa.rename(|v| pos_ids[v as usize])?
                }
            },
            Atom::Eq(..) => atoms::eq(self.k, pos_ids[0], pos_ids[1]),
            Atom::Prefix(..) => atoms::prefix(self.k, pos_ids[0], pos_ids[1]),
            Atom::StrictPrefix(..) => atoms::strict_prefix(self.k, pos_ids[0], pos_ids[1]),
            Atom::Cover(..) => atoms::ext_by_one(self.k, pos_ids[0], pos_ids[1]),
            Atom::LastSym(_, s) => atoms::last_sym(self.k, pos_ids[0], *s),
            Atom::FirstSym(_, s) => atoms::first_sym(self.k, pos_ids[0], *s),
            Atom::Prepends(_, _, s) => atoms::prepend_sym(self.k, pos_ids[0], pos_ids[1], *s),
            Atom::EqLen(..) => atoms::el(self.k, pos_ids[0], pos_ids[1]),
            Atom::ShorterEq(..) => atoms::shorter_eq(self.k, pos_ids[0], pos_ids[1]),
            Atom::Shorter(..) => atoms::shorter(self.k, pos_ids[0], pos_ids[1]),
            Atom::LexLeq(..) => atoms::lex_leq(self.k, pos_ids[0], pos_ids[1]),
            Atom::InLang(_, l) => atoms::in_dfa(self.k, pos_ids[0], &l.to_dfa(self.k)),
            Atom::PL(_, _, l) => atoms::p_l(self.k, pos_ids[0], pos_ids[1], &l.to_dfa(self.k)),
            Atom::ConcatEq(..) => return Err(CompileError::ConcatNotAutomatic),
            Atom::InsertAfter(_, _, _, s) => {
                atoms::insert_after(self.k, pos_ids[0], pos_ids[1], pos_ids[2], *s)
            }
        };

        // Constrain constants; remember which positions to project away.
        let mut to_project: Vec<Var> = Vec::new();
        let mut rename_to: HashMap<Var, Var> = HashMap::new();
        let mut seen_vars: HashMap<String, Var> = HashMap::new();
        for (i, t) in terms.iter().enumerate() {
            match t {
                Term::Const(c) => {
                    auto = auto.intersect(&atoms::const_eq(self.k, pos_ids[i], c))?;
                    to_project.push(pos_ids[i]);
                }
                Term::Var(name) => match seen_vars.get(name) {
                    Some(&first) => {
                        auto = auto.intersect(&atoms::eq(self.k, first, pos_ids[i]))?;
                        to_project.push(pos_ids[i]);
                    }
                    None => {
                        seen_vars.insert(name.clone(), pos_ids[i]);
                        rename_to.insert(pos_ids[i], self.var_of(name));
                    }
                },
                other => unreachable!("lower_terms left a functional term: {other:?}"),
            }
        }
        for v in to_project {
            if auto.vars.contains(&v) {
                auto = auto.project(v)?;
            }
        }
        let auto = auto.rename(|v| rename_to.get(&v).copied().unwrap_or(v))?;
        Ok(auto)
    }
}

/// The automaton for `{ x : |x| ≤ n }`.
pub fn length_at_most(k: Sym, var: Var, n: usize) -> SyncNfa {
    let mut a = SyncNfa::empty(k, vec![var]);
    let states: Vec<_> = (0..=n).map(|_| a.add_state(true)).collect();
    a.starts = vec![states[0]];
    for i in 0..n {
        for s in 0..k {
            a.add_edge(
                states[i],
                strcalc_synchro::conv::pack(&[Some(s)]),
                states[i + 1],
            );
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;
    use strcalc_alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    fn s(t: &str) -> Str {
        ab().parse(t).unwrap()
    }

    fn compile(src: &str) -> Compiled {
        let f = parse_formula(&ab(), src).unwrap();
        Compiler::pure(2).compile(&f).unwrap()
    }

    fn check1(src: &str, n: usize, pred: impl Fn(&Str) -> bool) {
        let c = compile(src);
        assert_eq!(c.var_names.len(), 1, "{src} should have one free var");
        for x in ab().strings_up_to(n) {
            assert_eq!(c.auto.accepts(&[&x]), pred(&x), "{src} on {x}");
        }
    }

    fn check2(src: &str, n: usize, pred: impl Fn(&Str, &Str) -> bool) {
        let c = compile(src);
        assert_eq!(c.var_names.len(), 2, "{src} should have two free vars");
        for x in ab().strings_up_to(n) {
            for y in ab().strings_up_to(n) {
                assert_eq!(
                    c.auto.accepts(&[&x, &y]),
                    pred(&x, &y),
                    "{src} on ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn atoms_with_constants() {
        check1("x = \"ab\"", 3, |x| *x == s("ab"));
        check1("\"a\" <= x", 3, |x| s("a").is_prefix_of(x));
        check1("x <= \"ab\"", 3, |x| x.is_prefix_of(&s("ab")));
    }

    #[test]
    fn repeated_variables() {
        check1("el(x, x)", 3, |_| true);
        check1("x < x", 3, |_| false);
    }

    #[test]
    fn boolean_connectives() {
        check2("x <= y & last(y,'a')", 2, |x, y| {
            x.is_prefix_of(y) && y.last() == Some(0)
        });
        check2("x <= y | el(x, y)", 2, |x, y| {
            x.is_prefix_of(y) || x.len() == y.len()
        });
        check2("!(x <= y)", 2, |x, y| !x.is_prefix_of(y));
        check2("x <= y -> el(x,y)", 2, |x, y| {
            !x.is_prefix_of(y) || x.len() == y.len()
        });
        check2("x <= y <-> y <= x", 2, |x, y| {
            x.is_prefix_of(y) == y.is_prefix_of(x)
        });
    }

    #[test]
    fn quantifiers() {
        // ∃y (x <1 y ∧ L_a(y)): the one-symbol extension by 'a' always
        // exists — all x.
        check1("exists y. (x <1 y & last(y,'a'))", 3, |_| true);
        // ∀y (x ⪯ y → el(x,y)): "every extension has equal length" — only
        // fails when some strict extension exists, i.e. never true… in
        // fact every x has a strict extension, and ⪯ includes x itself
        // (equal length ✓). So: false for all x? No: x ⪯ y includes
        // strict extensions with |y| > |x| → implication fails. So the
        // formula holds for no x.
        check1("forall y. (x <= y -> el(x,y))", 3, |_| false);
        // ∀y (y ⪯ x → y ⪯ x): trivially true.
        check1("forall y. (y <= x -> y <= x)", 3, |_| true);
    }

    #[test]
    fn ends_with_ba_query() {
        // The paper's Section 2 example (ends with "10"), transcribed to
        // {a,b} as "ends with ba".
        let src = "last(x,'a') & exists y. (y <1 x & last(y,'b'))";
        check1(src, 4, |x| {
            let n = x.len();
            n >= 2 && x.syms()[n - 1] == 0 && x.syms()[n - 2] == 1
        });
    }

    #[test]
    fn lowered_function_terms_compile() {
        // append: y = x·a.
        check2("y = append(x, 'a')", 2, |x, y| *y == x.append(0));
        // prepend: y = a·x.
        check2("y = prepend('a', x)", 2, |x, y| *y == x.prepend(0));
        // trim: y = TRIM_a(x).
        check2("y = trim('a', x)", 2, |x, y| *y == x.trim_leading(0));
    }

    #[test]
    fn sentences() {
        let c = compile("exists x. last(x, 'a')");
        assert!(c.auto.is_true());
        let c = compile("exists x. (last(x,'a') & !last(x,'a'))");
        assert!(!c.auto.is_true());
        let c = compile("forall x. exists y. x < y");
        assert!(c.auto.is_true());
        let c = compile("exists y. forall x. x <= y");
        assert!(!c.auto.is_true());
    }

    #[test]
    fn regular_membership_and_pl() {
        check1("in(x, /(aa)*/)", 4, |x| {
            x.len() % 2 == 0 && x.syms().iter().all(|&c| c == 0)
        });
        check2("pl(x, y, /b*/)", 3, |x, y| {
            x.is_prefix_of(y) && y.subtract(x).syms().iter().all(|&c| c == 1)
        });
    }

    #[test]
    fn insert_after_compiles() {
        // The Conclusion extension: y = x with 'a' inserted after p.
        let c = compile("ins(x, p, y, 'a')");
        assert_eq!(c.var_names, vec!["p", "x", "y"]);
        for x in ab().strings_up_to(2) {
            for p in ab().strings_up_to(2) {
                for y in ab().strings_up_to(3) {
                    let expect = x.insert_after(&p, 0) == Some(y.clone());
                    assert_eq!(c.auto.accepts(&[&p, &x, &y]), expect);
                }
            }
        }
        // With p = ε it coincides with prepend.
        check2("ins(x, \"\", y, 'b')", 2, |x, y| *y == x.prepend(1));
    }

    #[test]
    fn concat_rejected() {
        let f = parse_formula(&ab(), "concat(x,y,z)").unwrap();
        match Compiler::pure(2).compile(&f) {
            Err(CompileError::ConcatNotAutomatic) => {}
            other => panic!("expected ConcatNotAutomatic, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn restricted_quantifiers_need_adom() {
        let f = parse_formula(&ab(), "existsA y. y <= x").unwrap();
        assert!(matches!(
            Compiler::pure(2).compile(&f),
            Err(CompileError::RestrictedWithoutAdom)
        ));
    }

    #[test]
    fn restricted_quantifiers_with_adom() {
        let adom = vec![s("ab"), s("b")];
        let compiler = Compiler {
            adom: Some(&adom),
            ..Compiler::pure(2)
        };
        // ∃y ∈ adom: x ⪯ y — x is a prefix of "ab" or "b".
        let f = parse_formula(&ab(), "existsA y. x <= y").unwrap();
        let c = compiler.compile(&f).unwrap();
        for x in ab().strings_up_to(3) {
            let expect = x.is_prefix_of(&s("ab")) || x.is_prefix_of(&s("b"));
            assert_eq!(c.auto.accepts(&[&x]), expect, "on {x}");
        }
        // ∃x ∈ dom↓: ranges over prefix closure (plus scope vars — none
        // here): sentence "some dom↓ string ends in b".
        let f = parse_formula(&ab(), "existsP u. last(u, 'b')").unwrap();
        assert!(compiler.compile(&f).unwrap().auto.is_true());
        // Length-restricted: ∃|u| ≤ adom with |u| = 3 fails (max len 2).
        let f = parse_formula(&ab(), "existsL u. el(u, \"aaa\")").unwrap();
        assert!(!compiler.compile(&f).unwrap().auto.is_true());
        let f = parse_formula(&ab(), "existsL u. el(u, \"aa\")").unwrap();
        assert!(compiler.compile(&f).unwrap().auto.is_true());
    }

    #[test]
    fn unused_free_vars_are_tracked() {
        // "y" never constrained: still a track in the output.
        let f = parse_formula(&ab(), "last(x,'a') & y = y").unwrap();
        let c = Compiler::pure(2).compile(&f).unwrap();
        assert_eq!(c.var_names, vec!["x".to_string(), "y".to_string()]);
        assert!(c.auto.accepts(&[&s("a"), &s("bbb")]));
        assert!(!c.auto.accepts(&[&s("b"), &s("")]));
    }

    #[test]
    fn length_at_most_automaton() {
        let a = length_at_most(2, 0, 2);
        for x in ab().strings_up_to(4) {
            assert_eq!(a.accepts(&[&x]), x.len() <= 2);
        }
    }
}
