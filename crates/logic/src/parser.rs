//! Concrete syntax for formulas.
//!
//! ```text
//! formula ::= implies ('<->' implies)*
//! implies ::= or ('->' implies)?
//! or      ::= and ('|' and)*
//! and     ::= unary ('&' unary)*
//! unary   ::= '!' unary | quantifier | primary
//! quantifier ::= ('exists'|'forall') ('A'|'P'|'L')? IDENT '.' formula
//! primary ::= '(' formula ')' | 'true' | 'false' | atom
//! atom    ::= PRED '(' args ')'            named predicates (below)
//!           | IDENT '(' terms ')'          database relation
//!           | term ('=' | '<=' | '<' | '<1') term
//! term    ::= IDENT | '"' chars '"'
//!           | 'append' '(' term ',' CHAR ')'
//!           | 'prepend' '(' CHAR ',' term ')'
//!           | 'trim' '(' CHAR ',' term ')'
//! ```
//!
//! Named predicates: `last(t,'a')`, `first(t,'a')`, `fa(x,y,'a')`
//! (`y = a·x`), `el(x,y)`, `shorteq(x,y)`, `shorter(x,y)`, `lex(x,y)`,
//! `in(t, /regex/)`, `pl(x, y, /regex/)`, `concat(x,y,z)` (`z = x·y`).
//! Comparison operators follow the paper: `<=` is prefix `⪯`, `<` is
//! strict prefix `≺`, `<1` is "extends by one symbol".
//!
//! The quantifier suffixes select the paper's restricted ranges:
//! `existsA` = `∃x ∈ adom`, `existsP` = `∃x ∈ dom↓` (Proposition 2),
//! `existsL` = `∃|x| ≤ adom` (Theorem 2); likewise `forallA/P/L`.

use strcalc_alphabet::Alphabet;
use strcalc_automata::Regex;

use crate::formula::{Formula, Lang, Restrict, Term};
use crate::LogicError;

/// Parses a formula over the given alphabet.
pub fn parse_formula(alphabet: &Alphabet, text: &str) -> Result<Formula, LogicError> {
    let tokens = tokenize(alphabet, text)?;
    let mut p = P {
        tokens: &tokens,
        pos: 0,
    };
    let f = p.formula()?;
    if p.pos != p.tokens.len() {
        return Err(LogicError::Parse {
            pos: p.peek_pos(),
            msg: format!("unexpected {:?}", p.tokens[p.pos].1),
        });
    }
    Ok(f)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    StrLit(strcalc_alphabet::Str),
    CharLit(strcalc_alphabet::Sym),
    Regex(Regex),
    LParen,
    RParen,
    Comma,
    Dot,
    Bang,
    Amp,
    Pipe,
    Arrow,
    DArrow,
    Eq,
    PrefixLe,
    PrefixLt,
    CoverOp,
}

fn tokenize(alphabet: &Alphabet, text: &str) -> Result<Vec<(usize, Tok)>, LogicError> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                out.push((start, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((start, Tok::RParen));
                i += 1;
            }
            ',' => {
                out.push((start, Tok::Comma));
                i += 1;
            }
            '.' => {
                out.push((start, Tok::Dot));
                i += 1;
            }
            '!' => {
                out.push((start, Tok::Bang));
                i += 1;
            }
            '&' => {
                out.push((start, Tok::Amp));
                i += 1;
            }
            '|' => {
                out.push((start, Tok::Pipe));
                i += 1;
            }
            '-' => {
                if chars.get(i + 1) == Some(&'>') {
                    out.push((start, Tok::Arrow));
                    i += 2;
                } else {
                    return Err(LogicError::Parse {
                        pos: i,
                        msg: "expected '->'".into(),
                    });
                }
            }
            '=' => {
                out.push((start, Tok::Eq));
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'-') && chars.get(i + 2) == Some(&'>') {
                    out.push((start, Tok::DArrow));
                    i += 3;
                } else if chars.get(i + 1) == Some(&'=') {
                    out.push((start, Tok::PrefixLe));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'1') {
                    out.push((start, Tok::CoverOp));
                    i += 2;
                } else {
                    out.push((start, Tok::PrefixLt));
                    i += 1;
                }
            }
            '"' => {
                i += 1;
                let lit_start = i;
                while i < chars.len() && chars[i] != '"' {
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(LogicError::Parse {
                        pos: start,
                        msg: "unterminated string literal".into(),
                    });
                }
                let text: String = chars[lit_start..i].iter().collect();
                let s = alphabet.parse(&text).map_err(|e| LogicError::Parse {
                    pos: lit_start,
                    msg: e.to_string(),
                })?;
                out.push((start, Tok::StrLit(s)));
                i += 1;
            }
            '\'' => {
                let Some(&lc) = chars.get(i + 1) else {
                    return Err(LogicError::Parse {
                        pos: i,
                        msg: "unterminated char literal".into(),
                    });
                };
                if chars.get(i + 2) != Some(&'\'') {
                    return Err(LogicError::Parse {
                        pos: i,
                        msg: "char literal must be one character".into(),
                    });
                }
                let s = alphabet.sym_of(lc).map_err(|e| LogicError::Parse {
                    pos: i + 1,
                    msg: e.to_string(),
                })?;
                out.push((start, Tok::CharLit(s)));
                i += 3;
            }
            '/' => {
                i += 1;
                let lit_start = i;
                while i < chars.len() && chars[i] != '/' {
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(LogicError::Parse {
                        pos: start,
                        msg: "unterminated regex literal".into(),
                    });
                }
                let text: String = chars[lit_start..i].iter().collect();
                let r = Regex::parse(alphabet, &text).map_err(|e| LogicError::Parse {
                    pos: lit_start,
                    msg: e.to_string(),
                })?;
                out.push((start, Tok::Regex(r)));
                i += 1;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let word: String = chars[i..j].iter().collect();
                out.push((start, Tok::Ident(word)));
                i = j;
            }
            other => {
                return Err(LogicError::Parse {
                    pos: i,
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct P<'a> {
    tokens: &'a [(usize, Tok)],
    pos: usize,
}

impl<'a> P<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn peek_pos(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(p, _)| *p)
            .unwrap_or(usize::MAX)
    }

    fn err(&self, msg: impl Into<String>) -> LogicError {
        LogicError::Parse {
            pos: self.peek_pos(),
            msg: msg.into(),
        }
    }

    fn eat(&mut self, t: &Tok) -> Result<(), LogicError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn formula(&mut self) -> Result<Formula, LogicError> {
        let mut f = self.implies()?;
        while self.peek() == Some(&Tok::DArrow) {
            self.pos += 1;
            f = f.iff(self.implies()?);
        }
        Ok(f)
    }

    fn implies(&mut self) -> Result<Formula, LogicError> {
        let f = self.or()?;
        if self.peek() == Some(&Tok::Arrow) {
            self.pos += 1;
            return Ok(f.implies(self.implies()?));
        }
        Ok(f)
    }

    fn or(&mut self) -> Result<Formula, LogicError> {
        let mut f = self.and()?;
        while self.peek() == Some(&Tok::Pipe) {
            self.pos += 1;
            f = f.or(self.and()?);
        }
        Ok(f)
    }

    fn and(&mut self) -> Result<Formula, LogicError> {
        let mut f = self.unary()?;
        while self.peek() == Some(&Tok::Amp) {
            self.pos += 1;
            f = f.and(self.unary()?);
        }
        Ok(f)
    }

    fn unary(&mut self) -> Result<Formula, LogicError> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.pos += 1;
                Ok(self.unary()?.not())
            }
            Some(Tok::Ident(w)) if is_quantifier(w) => {
                let word = w.clone();
                self.pos += 1;
                let var = match self.peek() {
                    Some(Tok::Ident(v)) => v.clone(),
                    _ => return Err(self.err("expected a variable after quantifier")),
                };
                self.pos += 1;
                self.eat(&Tok::Dot)?;
                let body = self.unary_or_formula()?;
                Ok(build_quantifier(&word, var, body))
            }
            _ => self.primary(),
        }
    }

    /// After `Q x.` the body extends as far right as possible.
    fn unary_or_formula(&mut self) -> Result<Formula, LogicError> {
        self.formula()
    }

    fn primary(&mut self) -> Result<Formula, LogicError> {
        match self.peek().cloned() {
            Some(Tok::LParen) => {
                self.pos += 1;
                let f = self.formula()?;
                self.eat(&Tok::RParen)?;
                Ok(f)
            }
            Some(Tok::Ident(w)) if w == "true" => {
                self.pos += 1;
                Ok(Formula::True)
            }
            Some(Tok::Ident(w)) if w == "false" => {
                self.pos += 1;
                Ok(Formula::False)
            }
            Some(Tok::Ident(w))
                if self.tokens.get(self.pos + 1).map(|(_, t)| t) == Some(&Tok::LParen)
                    && !is_term_function(&w) =>
            {
                self.pos += 2; // ident + lparen
                self.named_or_relation(&w)
            }
            _ => {
                // Term comparison.
                let lhs = self.term()?;
                let op = self
                    .peek()
                    .cloned()
                    .ok_or_else(|| self.err("expected a comparison operator"))?;
                self.pos += 1;
                let rhs = self.term()?;
                match op {
                    Tok::Eq => Ok(Formula::eq(lhs, rhs)),
                    Tok::PrefixLe => Ok(Formula::prefix(lhs, rhs)),
                    Tok::PrefixLt => Ok(Formula::strict_prefix(lhs, rhs)),
                    Tok::CoverOp => Ok(Formula::cover(lhs, rhs)),
                    other => {
                        Err(self.err(format!("expected '=', '<=', '<' or '<1', found {other:?}")))
                    }
                }
            }
        }
    }

    /// Parses the arguments of `name(...)` where `(` is consumed.
    fn named_or_relation(&mut self, name: &str) -> Result<Formula, LogicError> {
        let f = match name {
            "last" | "first" => {
                let t = self.term()?;
                self.eat(&Tok::Comma)?;
                let c = self.char_lit()?;
                if name == "last" {
                    Formula::last_sym(t, c)
                } else {
                    Formula::first_sym(t, c)
                }
            }
            "fa" => {
                let x = self.term()?;
                self.eat(&Tok::Comma)?;
                let y = self.term()?;
                self.eat(&Tok::Comma)?;
                let c = self.char_lit()?;
                Formula::prepends(x, y, c)
            }
            "el" | "shorteq" | "shorter" | "lex" => {
                let x = self.term()?;
                self.eat(&Tok::Comma)?;
                let y = self.term()?;
                match name {
                    "el" => Formula::eq_len(x, y),
                    "shorteq" => Formula::shorter_eq(x, y),
                    "shorter" => Formula::shorter(x, y),
                    _ => Formula::lex_leq(x, y),
                }
            }
            "in" => {
                let t = self.term()?;
                self.eat(&Tok::Comma)?;
                let r = self.regex_lit()?;
                Formula::in_lang(t, Lang::new(r))
            }
            "pl" => {
                let x = self.term()?;
                self.eat(&Tok::Comma)?;
                let y = self.term()?;
                self.eat(&Tok::Comma)?;
                let r = self.regex_lit()?;
                Formula::p_l(x, y, Lang::new(r))
            }
            "concat" => {
                let x = self.term()?;
                self.eat(&Tok::Comma)?;
                let y = self.term()?;
                self.eat(&Tok::Comma)?;
                let z = self.term()?;
                Formula::concat_eq(x, y, z)
            }
            "ins" => {
                let x = self.term()?;
                self.eat(&Tok::Comma)?;
                let p = self.term()?;
                self.eat(&Tok::Comma)?;
                let y = self.term()?;
                self.eat(&Tok::Comma)?;
                let c = self.char_lit()?;
                Formula::insert_after(x, p, y, c)
            }
            rel => {
                // Database relation.
                let mut terms = Vec::new();
                if self.peek() != Some(&Tok::RParen) {
                    terms.push(self.term()?);
                    while self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                        terms.push(self.term()?);
                    }
                }
                self.eat(&Tok::RParen)?;
                return Ok(Formula::rel(rel, terms));
            }
        };
        self.eat(&Tok::RParen)?;
        Ok(f)
    }

    fn term(&mut self) -> Result<Term, LogicError> {
        match self.peek().cloned() {
            Some(Tok::Ident(w)) if is_term_function(&w) => {
                self.pos += 1;
                self.eat(&Tok::LParen)?;
                let t = match w.as_str() {
                    "append" => {
                        let inner = self.term()?;
                        self.eat(&Tok::Comma)?;
                        let c = self.char_lit()?;
                        inner.append(c)
                    }
                    "prepend" => {
                        let c = self.char_lit()?;
                        self.eat(&Tok::Comma)?;
                        let inner = self.term()?;
                        inner.prepend(c)
                    }
                    _ => {
                        // trim
                        let c = self.char_lit()?;
                        self.eat(&Tok::Comma)?;
                        let inner = self.term()?;
                        inner.trim_leading(c)
                    }
                };
                self.eat(&Tok::RParen)?;
                Ok(t)
            }
            Some(Tok::Ident(w)) => {
                self.pos += 1;
                Ok(Term::Var(w))
            }
            Some(Tok::StrLit(s)) => {
                self.pos += 1;
                Ok(Term::Const(s))
            }
            other => Err(self.err(format!("expected a term, found {other:?}"))),
        }
    }

    fn char_lit(&mut self) -> Result<strcalc_alphabet::Sym, LogicError> {
        match self.peek().cloned() {
            Some(Tok::CharLit(c)) => {
                self.pos += 1;
                Ok(c)
            }
            other => Err(self.err(format!("expected a char literal, found {other:?}"))),
        }
    }

    fn regex_lit(&mut self) -> Result<Regex, LogicError> {
        match self.peek().cloned() {
            Some(Tok::Regex(r)) => {
                self.pos += 1;
                Ok(r)
            }
            other => Err(self.err(format!("expected /regex/, found {other:?}"))),
        }
    }
}

fn is_quantifier(w: &str) -> bool {
    matches!(
        w,
        "exists" | "forall" | "existsA" | "forallA" | "existsP" | "forallP" | "existsL" | "forallL"
    )
}

fn is_term_function(w: &str) -> bool {
    matches!(w, "append" | "prepend" | "trim")
}

fn build_quantifier(word: &str, var: String, body: Formula) -> Formula {
    match word {
        "exists" => Formula::exists(var, body),
        "forall" => Formula::forall(var, body),
        "existsA" => Formula::exists_r(Restrict::Active, var, body),
        "forallA" => Formula::forall_r(Restrict::Active, var, body),
        "existsP" => Formula::exists_r(Restrict::PrefixDom, var, body),
        "forallP" => Formula::forall_r(Restrict::PrefixDom, var, body),
        "existsL" => Formula::exists_r(Restrict::LengthDom, var, body),
        "forallL" => Formula::forall_r(Restrict::LengthDom, var, body),
        _ => unreachable!("guarded by is_quantifier"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Atom;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    fn parse(t: &str) -> Formula {
        parse_formula(&ab(), t).unwrap()
    }

    #[test]
    fn parses_paper_example() {
        // The "ends with 10" query from Section 2 of the paper, over {a,b}:
        // ∃x R(x) ∧ L_b(x) ∧ ∃y (y <1 x ∧ L_a(y) ∧ ¬∃z (y <1 z & z <1 x))
        let f = parse(
            "exists x. R(x) & last(x,'b') & \
             exists y. (y <1 x & last(y,'a') & !exists z. (y <1 z & z <1 x))",
        );
        assert_eq!(f.num_quantifiers(), 3);
        assert!(f.free_vars().is_empty());
    }

    #[test]
    fn parses_comparisons() {
        assert!(matches!(parse("x <= y"), Formula::Atom(Atom::Prefix(..))));
        assert!(matches!(
            parse("x < y"),
            Formula::Atom(Atom::StrictPrefix(..))
        ));
        assert!(matches!(parse("x <1 y"), Formula::Atom(Atom::Cover(..))));
        assert!(matches!(parse("x = \"ab\""), Formula::Atom(Atom::Eq(..))));
    }

    #[test]
    fn parses_named_predicates() {
        assert!(matches!(parse("el(x,y)"), Formula::Atom(Atom::EqLen(..))));
        assert!(matches!(
            parse("fa(x,y,'a')"),
            Formula::Atom(Atom::Prepends(..))
        ));
        assert!(matches!(
            parse("in(x, /a(a|b)*/)"),
            Formula::Atom(Atom::InLang(..))
        ));
        assert!(matches!(
            parse("pl(x, y, /(ab)*/)"),
            Formula::Atom(Atom::PL(..))
        ));
        assert!(matches!(
            parse("concat(x,y,z)"),
            Formula::Atom(Atom::ConcatEq(..))
        ));
        assert!(matches!(parse("lex(x,y)"), Formula::Atom(Atom::LexLeq(..))));
    }

    #[test]
    fn parses_terms_with_functions() {
        let f = parse("append(x,'a') = y");
        if let Formula::Atom(Atom::Eq(lhs, _)) = &f {
            assert!(matches!(lhs, Term::Append(..)));
        } else {
            panic!("expected equality");
        }
        let f = parse("trim('a', x) = prepend('b', y)");
        assert!(matches!(f, Formula::Atom(Atom::Eq(..))));
    }

    #[test]
    fn parses_restricted_quantifiers() {
        assert!(matches!(
            parse("existsA x. R(x)"),
            Formula::ExistsR(Restrict::Active, ..)
        ));
        assert!(matches!(
            parse("forallP x. x <= x"),
            Formula::ForallR(Restrict::PrefixDom, ..)
        ));
        assert!(matches!(
            parse("existsL x. el(x,x)"),
            Formula::ExistsR(Restrict::LengthDom, ..)
        ));
    }

    #[test]
    fn precedence() {
        // a & b | c parses as (a & b) | c.
        let f = parse("last(x,'a') & last(x,'b') | first(x,'a')");
        assert!(matches!(f, Formula::Or(..)));
        // -> binds weaker than |, right-assoc.
        let f = parse("true -> false -> true");
        if let Formula::Implies(_, rhs) = &f {
            assert!(matches!(**rhs, Formula::Implies(..)));
        } else {
            panic!("expected implication");
        }
    }

    #[test]
    fn round_trips_through_render() {
        for src in [
            "exists y. (R(x,y) & x <= y & last(y,'a'))",
            "forall z. (el(x,z) -> !shorter(z,x))",
            "in(x, /(ab)*/) | pl(x,y,/b*/)",
            "existsP u. (u < x & lex(u, y))",
        ] {
            let f = parse(src);
            let rendered = f.render(&ab());
            let f2 = parse(&rendered);
            assert_eq!(f, f2, "render round-trip failed:\n{src}\n{rendered}");
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_formula(&ab(), "exists . R(x)").is_err());
        assert!(parse_formula(&ab(), "R(x").is_err());
        assert!(parse_formula(&ab(), "x <=").is_err());
        assert!(parse_formula(&ab(), "in(x, /c/)").is_err());
        assert!(parse_formula(&ab(), "last(x,'z')").is_err());
        assert!(parse_formula(&ab(), "x @ y").is_err());
    }
}
