//! Formula transformations and fragment inference.

use std::collections::{BTreeSet, HashMap};

use strcalc_alphabet::Sym;
use strcalc_automata::starfree::is_star_free;

use crate::formula::{Atom, Formula, Term};
use crate::LogicError;

/// The lattice of structures from Figure 1 of the paper (restricted to
/// the implemented ones):
///
/// ```text
///          Concat            (computationally complete, Prop. 1)
///            |
///          S_len
///          /   \
///      S_left  S_reg          (incomparable, Section 7)
///          \   /
///            S
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureClass {
    S,
    SLeft,
    SReg,
    SLen,
    Concat,
}

impl StructureClass {
    /// Least upper bound in the Figure-1 lattice. Note
    /// `join(SLeft, SReg) = SLen`: a formula mixing `F_a` with non-star-
    /// free pattern matching needs the full power of `S_len`.
    pub fn join(self, other: StructureClass) -> StructureClass {
        use StructureClass::*;
        match (self, other) {
            (Concat, _) | (_, Concat) => Concat,
            (SLen, _) | (_, SLen) => SLen,
            (SLeft, SReg) | (SReg, SLeft) => SLen,
            (SLeft, _) | (_, SLeft) => SLeft,
            (SReg, _) | (_, SReg) => SReg,
            (S, S) => S,
        }
    }

    /// Partial order of the lattice.
    pub fn leq(self, other: StructureClass) -> bool {
        self.join(other) == other
    }

    /// Human-readable name matching the paper's notation.
    pub fn name(self) -> &'static str {
        match self {
            StructureClass::S => "S",
            StructureClass::SLeft => "S_left",
            StructureClass::SReg => "S_reg",
            StructureClass::SLen => "S_len",
            StructureClass::Concat => "S_concat",
        }
    }
}

/// Infers the least structure class whose primitives cover every atom and
/// term of `f`. `InLang`/`P_L` atoms require deciding star-freeness of
/// their language, hence the alphabet size `k` and a monoid cap.
pub fn fragment(f: &Formula, k: Sym, monoid_cap: usize) -> Result<StructureClass, LogicError> {
    let mut class = StructureClass::S;
    let mut err: Option<LogicError> = None;
    f.visit(&mut |sub| {
        if err.is_some() {
            return;
        }
        if let Formula::Atom(a) = sub {
            // Terms first: Prepend / TrimLeading force S_left.
            for t in a.terms() {
                class = class.join(term_class(t));
            }
            let c = match a {
                Atom::Prepends(..) => StructureClass::SLeft,
                Atom::EqLen(..) | Atom::ShorterEq(..) | Atom::Shorter(..) => StructureClass::SLen,
                Atom::ConcatEq(..) => StructureClass::Concat,
                // Conclusion extension: subsumes F_a (p = ε), definable
                // over S_len via the same positional trick as F_a
                // (Section 4); typed conservatively at S_len because its
                // exact lattice position is the paper's open question.
                Atom::InsertAfter(..) => StructureClass::SLen,
                Atom::InLang(_, l) | Atom::PL(_, _, l) => {
                    let dfa = l.to_dfa(k);
                    match is_star_free(&dfa, monoid_cap) {
                        Ok(true) => StructureClass::S,
                        Ok(false) => StructureClass::SReg,
                        Err(e) => {
                            err = Some(LogicError::StarFreeUndecided(e.to_string()));
                            StructureClass::SReg
                        }
                    }
                }
                _ => StructureClass::S,
            };
            class = class.join(c);
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(class),
    }
}

fn term_class(t: &Term) -> StructureClass {
    match t {
        Term::Var(_) | Term::Const(_) => StructureClass::S,
        Term::Append(t, _) => term_class(t),
        Term::Prepend(_, t) | Term::TrimLeading(_, t) => StructureClass::SLeft.join(term_class(t)),
    }
}

/// Negation normal form: negations pushed to atoms, `→`/`↔` expanded.
/// Restricted quantifiers dualize against the *same* range (the range
/// does not depend on the truth of the body).
pub fn nnf(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) => f.clone(),
        Formula::And(a, b) => nnf(a).and(nnf(b)),
        Formula::Or(a, b) => nnf(a).or(nnf(b)),
        Formula::Implies(a, b) => nnf(&a.clone().not()).or(nnf(b)),
        Formula::Iff(a, b) => {
            let pos = nnf(a).and(nnf(b));
            let neg = nnf(&a.clone().not()).and(nnf(&b.clone().not()));
            pos.or(neg)
        }
        Formula::Exists(v, g) => Formula::exists(v.clone(), nnf(g)),
        Formula::Forall(v, g) => Formula::forall(v.clone(), nnf(g)),
        Formula::ExistsR(r, v, g) => Formula::exists_r(*r, v.clone(), nnf(g)),
        Formula::ForallR(r, v, g) => Formula::forall_r(*r, v.clone(), nnf(g)),
        Formula::Not(inner) => match inner.as_ref() {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Atom(_) => f.clone(),
            Formula::Not(g) => nnf(g),
            Formula::And(a, b) => nnf(&a.clone().not()).or(nnf(&b.clone().not())),
            Formula::Or(a, b) => nnf(&a.clone().not()).and(nnf(&b.clone().not())),
            Formula::Implies(a, b) => nnf(a).and(nnf(&b.clone().not())),
            Formula::Iff(a, b) => {
                let l = nnf(a).and(nnf(&b.clone().not()));
                let r = nnf(&a.clone().not()).and(nnf(b));
                l.or(r)
            }
            Formula::Exists(v, g) => Formula::forall(v.clone(), nnf(&g.clone().not())),
            Formula::Forall(v, g) => Formula::exists(v.clone(), nnf(&g.clone().not())),
            Formula::ExistsR(r, v, g) => Formula::forall_r(*r, v.clone(), nnf(&g.clone().not())),
            Formula::ForallR(r, v, g) => Formula::exists_r(*r, v.clone(), nnf(&g.clone().not())),
        },
    }
}

/// Quantifier rank (maximum nesting depth of quantifiers of any kind).
pub fn quantifier_rank(f: &Formula) -> usize {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) => 0,
        Formula::Not(g) => quantifier_rank(g),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            quantifier_rank(a).max(quantifier_rank(b))
        }
        Formula::Exists(_, g)
        | Formula::Forall(_, g)
        | Formula::ExistsR(_, _, g)
        | Formula::ForallR(_, _, g) => 1 + quantifier_rank(g),
    }
}

/// Renames bound variables so that every binder introduces a distinct
/// name, disjoint from all free variables. Evaluation engines rely on
/// this to allocate one automaton track / one enumeration slot per name.
pub fn freshen_bound(f: &Formula) -> Formula {
    let mut used: BTreeSet<String> = f.free_vars();
    let env: HashMap<String, String> = HashMap::new();
    let mut counter = 0usize;
    go(f, &env, &mut used, &mut counter)
}

fn fresh_name(base: &str, used: &mut BTreeSet<String>, counter: &mut usize) -> String {
    if !used.contains(base) {
        used.insert(base.to_string());
        return base.to_string();
    }
    loop {
        *counter += 1;
        let cand = format!("{base}_{counter}");
        if !used.contains(&cand) {
            used.insert(cand.clone());
            return cand;
        }
    }
}

fn go(
    f: &Formula,
    env: &HashMap<String, String>,
    used: &mut BTreeSet<String>,
    counter: &mut usize,
) -> Formula {
    let rename_term = |t: &Term, env: &HashMap<String, String>| -> Term {
        fn rt(t: &Term, env: &HashMap<String, String>) -> Term {
            match t {
                Term::Var(v) => match env.get(v) {
                    Some(n) => Term::Var(n.clone()),
                    None => t.clone(),
                },
                Term::Const(_) => t.clone(),
                Term::Append(inner, a) => Term::Append(Box::new(rt(inner, env)), *a),
                Term::Prepend(a, inner) => Term::Prepend(*a, Box::new(rt(inner, env))),
                Term::TrimLeading(a, inner) => Term::TrimLeading(*a, Box::new(rt(inner, env))),
            }
        }
        rt(t, env)
    };
    match f {
        Formula::True | Formula::False => f.clone(),
        Formula::Atom(a) => Formula::Atom(a.map_terms(|t| rename_term(t, env))),
        Formula::Not(g) => go(g, env, used, counter).not(),
        Formula::And(a, b) => go(a, env, used, counter).and(go(b, env, used, counter)),
        Formula::Or(a, b) => go(a, env, used, counter).or(go(b, env, used, counter)),
        Formula::Implies(a, b) => go(a, env, used, counter).implies(go(b, env, used, counter)),
        Formula::Iff(a, b) => go(a, env, used, counter).iff(go(b, env, used, counter)),
        Formula::Exists(v, g)
        | Formula::Forall(v, g)
        | Formula::ExistsR(_, v, g)
        | Formula::ForallR(_, v, g) => {
            let new_name = fresh_name(v, used, counter);
            let mut env2 = env.clone();
            env2.insert(v.clone(), new_name.clone());
            let body = go(g, &env2, used, counter);
            match f {
                Formula::Exists(..) => Formula::exists(new_name, body),
                Formula::Forall(..) => Formula::forall(new_name, body),
                Formula::ExistsR(r, ..) => Formula::exists_r(*r, new_name, body),
                Formula::ForallR(r, ..) => Formula::forall_r(*r, new_name, body),
                _ => unreachable!(),
            }
        }
    }
}

/// Lowers functional terms (`append`, `prepend`, `trim`) into relational
/// atoms with fresh existential variables, so that every atom mentions
/// only variables and constants. This mirrors the paper's replacement of
/// `l_a`, `f_a` by their graphs `L_a` (via the covering relation) and
/// `F_a`:
///
/// * `v = t·a`       ⟺ `Cover(t, v) ∧ L_a(v)`
/// * `v = a·t`       ⟺ `F_a(t, v)`
/// * `v = TRIM_a(t)` ⟺ `F_a(v, t) ∨ (¬FirstSym_a(t) ∧ v = ε)`
pub fn lower_terms(f: &Formula) -> Formula {
    let mut counter = 0usize;
    lower(f, &mut counter)
}

fn lower(f: &Formula, counter: &mut usize) -> Formula {
    match f {
        Formula::True | Formula::False => f.clone(),
        Formula::Atom(a) => lower_atom(a, counter),
        Formula::Not(g) => lower(g, counter).not(),
        Formula::And(a, b) => lower(a, counter).and(lower(b, counter)),
        Formula::Or(a, b) => lower(a, counter).or(lower(b, counter)),
        Formula::Implies(a, b) => lower(a, counter).implies(lower(b, counter)),
        Formula::Iff(a, b) => lower(a, counter).iff(lower(b, counter)),
        Formula::Exists(v, g) => Formula::exists(v.clone(), lower(g, counter)),
        Formula::Forall(v, g) => Formula::forall(v.clone(), lower(g, counter)),
        Formula::ExistsR(r, v, g) => Formula::exists_r(*r, v.clone(), lower(g, counter)),
        Formula::ForallR(r, v, g) => Formula::forall_r(*r, v.clone(), lower(g, counter)),
    }
}

fn lower_atom(a: &Atom, counter: &mut usize) -> Formula {
    // Flatten each term; collect (fresh var, defining formula) pairs.
    let mut defs: Vec<(String, Formula)> = Vec::new();
    let flat = a.map_terms(|t| flatten_term(t, &mut defs, counter));
    let mut out = Formula::Atom(flat);
    for (v, def) in defs.into_iter().rev() {
        out = Formula::exists(v, def.and(out));
    }
    out
}

/// Returns a flat term equal to `t`, pushing definitions for intermediate
/// results into `defs`.
fn flatten_term(t: &Term, defs: &mut Vec<(String, Formula)>, counter: &mut usize) -> Term {
    match t {
        Term::Var(_) | Term::Const(_) => t.clone(),
        Term::Append(inner, a) => {
            let flat_inner = flatten_term(inner, defs, counter);
            *counter += 1;
            let v = format!("_t{counter}");
            let vt = Term::Var(v.clone());
            // v = inner · a  ⟺  Cover(inner, v) ∧ L_a(v)
            let def = Formula::cover(flat_inner, vt.clone()).and(Formula::last_sym(vt.clone(), *a));
            defs.push((v, def));
            vt
        }
        Term::Prepend(a, inner) => {
            let flat_inner = flatten_term(inner, defs, counter);
            *counter += 1;
            let v = format!("_t{counter}");
            let vt = Term::Var(v.clone());
            // v = a · inner  ⟺  F_a(inner, v)
            let def = Formula::prepends(flat_inner, vt.clone(), *a);
            defs.push((v, def));
            vt
        }
        Term::TrimLeading(a, inner) => {
            let flat_inner = flatten_term(inner, defs, counter);
            *counter += 1;
            let v = format!("_t{counter}");
            let vt = Term::Var(v.clone());
            // v = TRIM_a(inner) ⟺ F_a(v, inner) ∨ (¬first_a(inner) ∧ v = ε)
            let def = Formula::prepends(vt.clone(), flat_inner.clone(), *a).or(Formula::first_sym(
                flat_inner, *a,
            )
            .not()
            .and(Formula::eq(vt.clone(), Term::epsilon())));
            defs.push((v, def));
            vt
        }
    }
}

/// Light constant folding: eliminates `True`/`False` subformulas and
/// double negations. Unrestricted quantifiers over constants fold
/// (`Σ*` is nonempty); restricted quantifiers do **not** (their range can
/// be empty on an empty database).
pub fn simplify(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) => f.clone(),
        Formula::Not(g) => match simplify(g) {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            s => s.not(),
        },
        Formula::And(a, b) => match (simplify(a), simplify(b)) {
            (Formula::False, _) | (_, Formula::False) => Formula::False,
            (Formula::True, s) | (s, Formula::True) => s,
            (x, y) => x.and(y),
        },
        Formula::Or(a, b) => match (simplify(a), simplify(b)) {
            (Formula::True, _) | (_, Formula::True) => Formula::True,
            (Formula::False, s) | (s, Formula::False) => s,
            (x, y) => x.or(y),
        },
        Formula::Implies(a, b) => match (simplify(a), simplify(b)) {
            (Formula::False, _) | (_, Formula::True) => Formula::True,
            (Formula::True, s) => s,
            (x, Formula::False) => simplify(&x.not()),
            (x, y) => x.implies(y),
        },
        Formula::Iff(a, b) => match (simplify(a), simplify(b)) {
            (Formula::True, s) | (s, Formula::True) => s,
            (Formula::False, s) | (s, Formula::False) => simplify(&s.not()),
            (x, y) => x.iff(y),
        },
        Formula::Exists(v, g) => match simplify(g) {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            s => Formula::exists(v.clone(), s),
        },
        Formula::Forall(v, g) => match simplify(g) {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            s => Formula::forall(v.clone(), s),
        },
        Formula::ExistsR(r, v, g) => Formula::exists_r(*r, v.clone(), simplify(g)),
        Formula::ForallR(r, v, g) => Formula::forall_r(*r, v.clone(), simplify(g)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Lang;
    use strcalc_alphabet::Alphabet;
    use strcalc_automata::Regex;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    fn re(t: &str) -> Regex {
        Regex::parse(&ab(), t).unwrap()
    }

    #[test]
    fn lattice_joins() {
        use StructureClass::*;
        assert_eq!(S.join(SLeft), SLeft);
        assert_eq!(SLeft.join(SReg), SLen);
        assert_eq!(SReg.join(SLeft), SLen);
        assert_eq!(SLen.join(S), SLen);
        assert_eq!(Concat.join(S), Concat);
        assert!(S.leq(SReg) && !SReg.leq(SLeft));
    }

    #[test]
    fn fragment_inference() {
        let x = || Term::var("x");
        let y = || Term::var("y");
        let f = Formula::prefix(x(), y()).and(Formula::last_sym(y(), 0));
        assert_eq!(fragment(&f, 2, 100_000).unwrap(), StructureClass::S);

        let f = Formula::prepends(x(), y(), 0);
        assert_eq!(fragment(&f, 2, 100_000).unwrap(), StructureClass::SLeft);

        let f = Formula::eq_len(x(), y());
        assert_eq!(fragment(&f, 2, 100_000).unwrap(), StructureClass::SLen);

        // Star-free language → stays in S.
        let f = Formula::in_lang(x(), Lang::new(re("a*")));
        assert_eq!(fragment(&f, 2, 100_000).unwrap(), StructureClass::S);

        // Non-star-free language → S_reg.
        let f = Formula::in_lang(x(), Lang::new(re("(aa)*")));
        assert_eq!(fragment(&f, 2, 100_000).unwrap(), StructureClass::SReg);

        // F_a together with (aa)* → S_len.
        let f = Formula::prepends(x(), y(), 0).and(Formula::in_lang(x(), Lang::new(re("(aa)*"))));
        assert_eq!(fragment(&f, 2, 100_000).unwrap(), StructureClass::SLen);

        let f = Formula::concat_eq(x(), y(), Term::var("z"));
        assert_eq!(fragment(&f, 2, 100_000).unwrap(), StructureClass::Concat);
    }

    #[test]
    fn nnf_pushes_negations() {
        let x = || Term::var("x");
        let f = Formula::exists("y", Formula::prefix(x(), Term::var("y"))).not();
        let g = nnf(&f);
        match g {
            Formula::Forall(_, body) => match *body {
                Formula::Not(inner) => {
                    assert!(matches!(*inner, Formula::Atom(_)));
                }
                other => panic!("expected ¬atom, got {other}"),
            },
            other => panic!("expected ∀, got {other}"),
        }
    }

    #[test]
    fn nnf_expands_iff() {
        let a = Formula::last_sym(Term::var("x"), 0);
        let b = Formula::last_sym(Term::var("x"), 1);
        let g = nnf(&a.clone().iff(b.clone()));
        // (a ∧ b) ∨ (¬a ∧ ¬b)
        assert!(matches!(g, Formula::Or(..)));
    }

    #[test]
    fn quantifier_rank_counts_depth() {
        let f = Formula::exists(
            "x",
            Formula::forall("y", Formula::eq(Term::var("x"), Term::var("y")))
                .and(Formula::exists("z", Formula::True)),
        );
        assert_eq!(quantifier_rank(&f), 2);
    }

    #[test]
    fn freshen_disambiguates() {
        // ∃x (R(x) ∧ ∃x S(x)) with free x outside... build: x free in
        // head, then two binders both named x.
        let f = Formula::rel("H", vec![Term::var("x")]).and(Formula::exists(
            "x",
            Formula::rel("R", vec![Term::var("x")]).and(Formula::exists(
                "x",
                Formula::rel("S", vec![Term::var("x")]),
            )),
        ));
        let g = freshen_bound(&f);
        // All binder names distinct and distinct from the free "x".
        let mut binders = Vec::new();
        g.visit(&mut |sub| {
            if let Formula::Exists(v, _) = sub {
                binders.push(v.clone());
            }
        });
        assert_eq!(binders.len(), 2);
        assert_ne!(binders[0], binders[1]);
        assert!(!binders.contains(&"x".to_string()));
        assert!(g.free_vars().contains("x"));
    }

    #[test]
    fn lower_append_terms() {
        // last(append(x, 'a'), 'a') — trivially true for all x after
        // lowering; just check shape: ∃v (Cover(x,v) ∧ L_a(v) ∧ last(v,a)).
        let f = Formula::last_sym(Term::var("x").append(0), 0);
        let g = lower_terms(&f);
        assert!(matches!(g, Formula::Exists(..)));
        let fv = g.free_vars();
        assert_eq!(fv.len(), 1);
        assert!(fv.contains("x"));
    }

    #[test]
    fn lower_trim_terms() {
        let f = Formula::eq(Term::var("y"), Term::var("x").trim_leading(1));
        let g = lower_terms(&f);
        assert!(matches!(g, Formula::Exists(..)));
        // Lowered formula uses F_a and first-symbol atoms.
        let mut has_prepends = false;
        g.visit(&mut |sub| {
            if let Formula::Atom(Atom::Prepends(..)) = sub {
                has_prepends = true;
            }
        });
        assert!(has_prepends);
    }

    #[test]
    fn simplify_folds_constants() {
        let f = Formula::True.and(Formula::last_sym(Term::var("x"), 0));
        assert!(matches!(simplify(&f), Formula::Atom(_)));
        let f = Formula::exists("x", Formula::False);
        assert_eq!(simplify(&f), Formula::False);
        let f = Formula::forall("x", Formula::True);
        assert_eq!(simplify(&f), Formula::True);
        // Restricted quantifier over True must NOT fold.
        let f = Formula::exists_r(crate::Restrict::Active, "x", Formula::True);
        assert!(matches!(simplify(&f), Formula::ExistsR(..)));
        let f = Formula::last_sym(Term::var("x"), 0).not().not();
        assert!(matches!(simplify(&f), Formula::Atom(_)));
    }
}
