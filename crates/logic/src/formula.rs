//! Terms, atoms and formulas.

use std::collections::BTreeSet;
use std::fmt;

use strcalc_alphabet::{Alphabet, Str, Sym};
use strcalc_automata::{Dfa, Regex};

/// A term: a variable, a string constant, or a string function applied to
/// a term. Functions lower to relational atoms before evaluation (the
/// paper's move of using the *graphs* `L_a`, `F_a` instead of `l_a`,
/// `f_a`): see `strcalc-core`'s lowering pass.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable.
    Var(String),
    /// A constant string.
    Const(Str),
    /// `l_a(t) = t · a` — definable over `S`.
    Append(Box<Term>, Sym),
    /// `f_a(t) = a · t` — requires `S_left` (or `S_len`).
    Prepend(Sym, Box<Term>),
    /// `TRIM_a(t)`: `t'` if `t = a·t'`, else `ε` — requires `S_left`.
    TrimLeading(Sym, Box<Term>),
}

impl Term {
    /// A variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// A constant term.
    pub fn konst(s: Str) -> Term {
        Term::Const(s)
    }

    /// The empty-string constant `ε`.
    pub fn epsilon() -> Term {
        Term::Const(Str::epsilon())
    }

    /// `t · a`.
    pub fn append(self, a: Sym) -> Term {
        Term::Append(Box::new(self), a)
    }

    /// `a · t`.
    pub fn prepend(self, a: Sym) -> Term {
        Term::Prepend(a, Box::new(self))
    }

    /// `TRIM_a(t)`.
    pub fn trim_leading(self, a: Sym) -> Term {
        Term::TrimLeading(a, Box::new(self))
    }

    /// Collects free variables into `out`.
    pub fn free_vars_into(&self, out: &mut BTreeSet<String>) {
        match self {
            Term::Var(v) => {
                out.insert(v.clone());
            }
            Term::Const(_) => {}
            Term::Append(t, _) | Term::Prepend(_, t) | Term::TrimLeading(_, t) => {
                t.free_vars_into(out)
            }
        }
    }

    /// `true` iff this term is a plain variable or constant (no functions
    /// to lower).
    pub fn is_flat(&self) -> bool {
        matches!(self, Term::Var(_) | Term::Const(_))
    }

    /// Renames a free variable.
    pub fn rename_var(&self, from: &str, to: &str) -> Term {
        match self {
            Term::Var(v) if v == from => Term::Var(to.to_string()),
            Term::Var(_) | Term::Const(_) => self.clone(),
            Term::Append(t, a) => Term::Append(Box::new(t.rename_var(from, to)), *a),
            Term::Prepend(a, t) => Term::Prepend(*a, Box::new(t.rename_var(from, to))),
            Term::TrimLeading(a, t) => Term::TrimLeading(*a, Box::new(t.rename_var(from, to))),
        }
    }
}

/// A named regular language, carried inside `in`/`P_L` atoms.
///
/// Stored as a [`Regex`] (for display, equality, and re-compilation at any
/// alphabet size) together with an optional display name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lang {
    /// Optional human-readable name (e.g. the original SIMILAR pattern).
    pub name: Option<String>,
    pub regex: Regex,
}

impl Lang {
    pub fn new(regex: Regex) -> Lang {
        Lang { name: None, regex }
    }

    pub fn named(name: impl Into<String>, regex: Regex) -> Lang {
        Lang {
            name: Some(name.into()),
            regex,
        }
    }

    /// Compiles to a minimal DFA over a `k`-symbol alphabet.
    pub fn to_dfa(&self, k: Sym) -> Dfa {
        Dfa::from_regex(k, &self.regex)
    }
}

/// Atomic formulas: the primitives of every structure in the paper, plus
/// database relations and (for the cautionary `RC_concat`) concatenation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// Database relation `R(t̄)`.
    Rel(String, Vec<Term>),
    /// `t₁ = t₂`.
    Eq(Term, Term),
    /// `t₁ ⪯ t₂` (prefix).
    Prefix(Term, Term),
    /// `t₁ ≺ t₂` (strict prefix).
    StrictPrefix(Term, Term),
    /// `t₁ < t₂`: `t₂` extends `t₁` by exactly one symbol.
    Cover(Term, Term),
    /// `L_a(t)`: last symbol of `t` is `a`.
    LastSym(Term, Sym),
    /// First symbol of `t` is `a` (definable over `S`; kept primitive).
    FirstSym(Term, Sym),
    /// `F_a(t₁, t₂)`: `t₂ = a · t₁` — the `S_left` primitive.
    Prepends(Term, Term, Sym),
    /// `el(t₁, t₂)`: `|t₁| = |t₂|` — the `S_len` primitive.
    EqLen(Term, Term),
    /// `|t₁| ≤ |t₂|` (definable over `S_len`).
    ShorterEq(Term, Term),
    /// `|t₁| < |t₂|` (definable over `S_len`).
    Shorter(Term, Term),
    /// `t₁ ≤_lex t₂` (definable over `S`, formula (2) of the paper).
    LexLeq(Term, Term),
    /// `t ∈ L` — membership in a regular language. Over `S` only when `L`
    /// is star-free; over `S_reg`/`S_len` for any regular `L`.
    InLang(Term, Lang),
    /// `P_L(t₁, t₂)`: `t₁ ⪯ t₂ ∧ t₂ − t₁ ∈ L` — the `S_reg` primitive
    /// (non-strict `⪯`; the strict variant is `P_L ∧ t₁ ≠ t₂`).
    PL(Term, Term, Lang),
    /// `t₃ = t₁ · t₂` — concatenation, `RC_concat` only (Proposition 1:
    /// admitting this makes the calculus computationally complete).
    ConcatEq(Term, Term, Term),
    /// `INS_a(x, p, y)`: `y` is `x` with `a` inserted right after the
    /// prefix `p ⪯ x` — the extension proposed in the paper's Conclusion
    /// ("inserting characters at arbitrary position in a string x,
    /// specified by a prefix of x"). Synchronized-regular, hence fully
    /// supported by the exact engine; conservatively classified as
    /// `S_len` (it subsumes `F_a` at `p = ε`; its exact lattice position
    /// is the paper's open question).
    InsertAfter(Term, Term, Term, Sym),
}

impl Atom {
    /// The terms of this atom, in order.
    pub fn terms(&self) -> Vec<&Term> {
        match self {
            Atom::Rel(_, ts) => ts.iter().collect(),
            Atom::Eq(a, b)
            | Atom::Prefix(a, b)
            | Atom::StrictPrefix(a, b)
            | Atom::Cover(a, b)
            | Atom::EqLen(a, b)
            | Atom::ShorterEq(a, b)
            | Atom::Shorter(a, b)
            | Atom::LexLeq(a, b)
            | Atom::PL(a, b, _) => vec![a, b],
            Atom::Prepends(a, b, _) => vec![a, b],
            Atom::LastSym(t, _) | Atom::FirstSym(t, _) | Atom::InLang(t, _) => vec![t],
            Atom::ConcatEq(a, b, c) => vec![a, b, c],
            Atom::InsertAfter(a, b, c, _) => vec![a, b, c],
        }
    }

    /// Rebuilds the atom with terms transformed by `f`.
    pub fn map_terms(&self, mut f: impl FnMut(&Term) -> Term) -> Atom {
        match self {
            Atom::Rel(r, ts) => Atom::Rel(r.clone(), ts.iter().map(&mut f).collect()),
            Atom::Eq(a, b) => Atom::Eq(f(a), f(b)),
            Atom::Prefix(a, b) => Atom::Prefix(f(a), f(b)),
            Atom::StrictPrefix(a, b) => Atom::StrictPrefix(f(a), f(b)),
            Atom::Cover(a, b) => Atom::Cover(f(a), f(b)),
            Atom::LastSym(t, s) => Atom::LastSym(f(t), *s),
            Atom::FirstSym(t, s) => Atom::FirstSym(f(t), *s),
            Atom::Prepends(a, b, s) => Atom::Prepends(f(a), f(b), *s),
            Atom::EqLen(a, b) => Atom::EqLen(f(a), f(b)),
            Atom::ShorterEq(a, b) => Atom::ShorterEq(f(a), f(b)),
            Atom::Shorter(a, b) => Atom::Shorter(f(a), f(b)),
            Atom::LexLeq(a, b) => Atom::LexLeq(f(a), f(b)),
            Atom::InLang(t, l) => Atom::InLang(f(t), l.clone()),
            Atom::PL(a, b, l) => Atom::PL(f(a), f(b), l.clone()),
            Atom::ConcatEq(a, b, c) => Atom::ConcatEq(f(a), f(b), f(c)),
            Atom::InsertAfter(a, b, c, s) => Atom::InsertAfter(f(a), f(b), f(c), *s),
        }
    }
}

/// The paper's restricted quantifier ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Restrict {
    /// `∃x ∈ adom`: `x` ranges over the active domain.
    Active,
    /// `∃x ∈ dom↓` (Proposition 2): `x` ranges over prefixes of active
    /// domain strings or of the enclosing free variables' values.
    PrefixDom,
    /// `∃|x| ≤ adom` (Theorem 2): `x` ranges over strings no longer than
    /// the longest active-domain / parameter string.
    LengthDom,
}

/// First-order formulas.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    True,
    False,
    Atom(Atom),
    Not(Box<Formula>),
    And(Box<Formula>, Box<Formula>),
    Or(Box<Formula>, Box<Formula>),
    Implies(Box<Formula>, Box<Formula>),
    Iff(Box<Formula>, Box<Formula>),
    Exists(String, Box<Formula>),
    Forall(String, Box<Formula>),
    /// Restricted existential: `∃x ∈ adom`, `∃x ∈ dom↓`, `∃|x| ≤ adom`.
    ExistsR(Restrict, String, Box<Formula>),
    /// Restricted universal.
    ForallR(Restrict, String, Box<Formula>),
}

impl Formula {
    // -------- builders --------

    pub fn atom(a: Atom) -> Formula {
        Formula::Atom(a)
    }

    pub fn rel(name: impl Into<String>, terms: Vec<Term>) -> Formula {
        Formula::Atom(Atom::Rel(name.into(), terms))
    }

    pub fn eq(a: Term, b: Term) -> Formula {
        Formula::Atom(Atom::Eq(a, b))
    }

    pub fn prefix(a: Term, b: Term) -> Formula {
        Formula::Atom(Atom::Prefix(a, b))
    }

    pub fn strict_prefix(a: Term, b: Term) -> Formula {
        Formula::Atom(Atom::StrictPrefix(a, b))
    }

    pub fn cover(a: Term, b: Term) -> Formula {
        Formula::Atom(Atom::Cover(a, b))
    }

    pub fn last_sym(t: Term, s: Sym) -> Formula {
        Formula::Atom(Atom::LastSym(t, s))
    }

    pub fn first_sym(t: Term, s: Sym) -> Formula {
        Formula::Atom(Atom::FirstSym(t, s))
    }

    pub fn prepends(x: Term, y: Term, s: Sym) -> Formula {
        Formula::Atom(Atom::Prepends(x, y, s))
    }

    pub fn eq_len(a: Term, b: Term) -> Formula {
        Formula::Atom(Atom::EqLen(a, b))
    }

    pub fn shorter_eq(a: Term, b: Term) -> Formula {
        Formula::Atom(Atom::ShorterEq(a, b))
    }

    pub fn shorter(a: Term, b: Term) -> Formula {
        Formula::Atom(Atom::Shorter(a, b))
    }

    pub fn lex_leq(a: Term, b: Term) -> Formula {
        Formula::Atom(Atom::LexLeq(a, b))
    }

    pub fn in_lang(t: Term, l: Lang) -> Formula {
        Formula::Atom(Atom::InLang(t, l))
    }

    pub fn p_l(a: Term, b: Term, l: Lang) -> Formula {
        Formula::Atom(Atom::PL(a, b, l))
    }

    pub fn concat_eq(a: Term, b: Term, c: Term) -> Formula {
        Formula::Atom(Atom::ConcatEq(a, b, c))
    }

    /// `INS_a(x, p, y)` — the Conclusion's insertion extension.
    pub fn insert_after(x: Term, p: Term, y: Term, a: Sym) -> Formula {
        Formula::Atom(Atom::InsertAfter(x, p, y, a))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    pub fn implies(self, other: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(other))
    }

    pub fn iff(self, other: Formula) -> Formula {
        Formula::Iff(Box::new(self), Box::new(other))
    }

    pub fn exists(var: impl Into<String>, body: Formula) -> Formula {
        Formula::Exists(var.into(), Box::new(body))
    }

    pub fn forall(var: impl Into<String>, body: Formula) -> Formula {
        Formula::Forall(var.into(), Box::new(body))
    }

    pub fn exists_r(r: Restrict, var: impl Into<String>, body: Formula) -> Formula {
        Formula::ExistsR(r, var.into(), Box::new(body))
    }

    pub fn forall_r(r: Restrict, var: impl Into<String>, body: Formula) -> Formula {
        Formula::ForallR(r, var.into(), Box::new(body))
    }

    /// Conjunction of several formulas (`True` if empty).
    pub fn and_all<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        let mut it = items.into_iter();
        match it.next() {
            None => Formula::True,
            Some(first) => it.fold(first, Formula::and),
        }
    }

    /// Disjunction of several formulas (`False` if empty).
    pub fn or_all<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        let mut it = items.into_iter();
        match it.next() {
            None => Formula::False,
            Some(first) => it.fold(first, Formula::or),
        }
    }

    // -------- traversals --------

    /// Free variables, sorted.
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.free_vars_into(&mut out);
        out
    }

    fn free_vars_into(&self, out: &mut BTreeSet<String>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => {
                for t in a.terms() {
                    t.free_vars_into(out);
                }
            }
            Formula::Not(f) => f.free_vars_into(out),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Iff(a, b) => {
                a.free_vars_into(out);
                b.free_vars_into(out);
            }
            Formula::Exists(v, f)
            | Formula::Forall(v, f)
            | Formula::ExistsR(_, v, f)
            | Formula::ForallR(_, v, f) => {
                let mut inner = BTreeSet::new();
                f.free_vars_into(&mut inner);
                inner.remove(v);
                out.extend(inner);
            }
        }
    }

    /// All variables mentioned anywhere (free or bound).
    pub fn all_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| match f {
            Formula::Atom(a) => {
                for t in a.terms() {
                    t.free_vars_into(&mut out);
                }
            }
            Formula::Exists(v, _)
            | Formula::Forall(v, _)
            | Formula::ExistsR(_, v, _)
            | Formula::ForallR(_, v, _) => {
                out.insert(v.clone());
            }
            _ => {}
        });
        out
    }

    /// Names of database relations used.
    pub fn rel_names(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| {
            if let Formula::Atom(Atom::Rel(r, _)) = f {
                out.insert(r.clone());
            }
        });
        out
    }

    /// Visits every subformula (preorder).
    pub fn visit(&self, f: &mut impl FnMut(&Formula)) {
        f(self);
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => {}
            Formula::Not(a) => a.visit(f),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Iff(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Formula::Exists(_, a)
            | Formula::Forall(_, a)
            | Formula::ExistsR(_, _, a)
            | Formula::ForallR(_, _, a) => a.visit(f),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Number of quantifiers (of any kind).
    pub fn num_quantifiers(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |f| {
            if matches!(
                f,
                Formula::Exists(..)
                    | Formula::Forall(..)
                    | Formula::ExistsR(..)
                    | Formula::ForallR(..)
            ) {
                n += 1;
            }
        });
        n
    }

    /// Renames a *free* variable throughout (stops at shadowing binders).
    pub fn rename_free(&self, from: &str, to: &str) -> Formula {
        match self {
            Formula::True | Formula::False => self.clone(),
            Formula::Atom(a) => Formula::Atom(a.map_terms(|t| t.rename_var(from, to))),
            Formula::Not(f) => Formula::Not(Box::new(f.rename_free(from, to))),
            Formula::And(a, b) => Formula::And(
                Box::new(a.rename_free(from, to)),
                Box::new(b.rename_free(from, to)),
            ),
            Formula::Or(a, b) => Formula::Or(
                Box::new(a.rename_free(from, to)),
                Box::new(b.rename_free(from, to)),
            ),
            Formula::Implies(a, b) => Formula::Implies(
                Box::new(a.rename_free(from, to)),
                Box::new(b.rename_free(from, to)),
            ),
            Formula::Iff(a, b) => Formula::Iff(
                Box::new(a.rename_free(from, to)),
                Box::new(b.rename_free(from, to)),
            ),
            Formula::Exists(v, f) if v != from => {
                Formula::Exists(v.clone(), Box::new(f.rename_free(from, to)))
            }
            Formula::Forall(v, f) if v != from => {
                Formula::Forall(v.clone(), Box::new(f.rename_free(from, to)))
            }
            Formula::ExistsR(r, v, f) if v != from => {
                Formula::ExistsR(*r, v.clone(), Box::new(f.rename_free(from, to)))
            }
            Formula::ForallR(r, v, f) if v != from => {
                Formula::ForallR(*r, v.clone(), Box::new(f.rename_free(from, to)))
            }
            // Shadowed: stop.
            _ => self.clone(),
        }
    }

    /// Renders the formula using an alphabet for symbol/constant display.
    pub fn render(&self, alphabet: &Alphabet) -> String {
        let mut out = String::new();
        render_formula(self, alphabet, 0, &mut out);
        out
    }
}

fn render_term(t: &Term, alphabet: &Alphabet, out: &mut String) {
    match t {
        Term::Var(v) => out.push_str(v),
        Term::Const(s) => {
            out.push('"');
            out.push_str(&alphabet.render(s));
            out.push('"');
        }
        Term::Append(t, a) => {
            out.push_str("append(");
            render_term(t, alphabet, out);
            out.push_str(&format!(",'{}')", alphabet.char_of(*a).unwrap_or('?')));
        }
        Term::Prepend(a, t) => {
            out.push_str("prepend(");
            out.push_str(&format!("'{}',", alphabet.char_of(*a).unwrap_or('?')));
            render_term(t, alphabet, out);
            out.push(')');
        }
        Term::TrimLeading(a, t) => {
            out.push_str("trim(");
            out.push_str(&format!("'{}',", alphabet.char_of(*a).unwrap_or('?')));
            render_term(t, alphabet, out);
            out.push(')');
        }
    }
}

fn render_atom(a: &Atom, alphabet: &Alphabet, out: &mut String) {
    let bin = |op: &str, x: &Term, y: &Term, out: &mut String| {
        render_term(x, alphabet, out);
        out.push_str(op);
        render_term(y, alphabet, out);
    };
    match a {
        Atom::Rel(r, ts) => {
            out.push_str(r);
            out.push('(');
            for (i, t) in ts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_term(t, alphabet, out);
            }
            out.push(')');
        }
        Atom::Eq(x, y) => bin(" = ", x, y, out),
        Atom::Prefix(x, y) => bin(" <= ", x, y, out),
        Atom::StrictPrefix(x, y) => bin(" < ", x, y, out),
        Atom::Cover(x, y) => bin(" <1 ", x, y, out),
        Atom::LastSym(t, s) => {
            out.push_str("last(");
            render_term(t, alphabet, out);
            out.push_str(&format!(",'{}')", alphabet.char_of(*s).unwrap_or('?')));
        }
        Atom::FirstSym(t, s) => {
            out.push_str("first(");
            render_term(t, alphabet, out);
            out.push_str(&format!(",'{}')", alphabet.char_of(*s).unwrap_or('?')));
        }
        Atom::Prepends(x, y, s) => {
            out.push_str("fa(");
            render_term(x, alphabet, out);
            out.push(',');
            render_term(y, alphabet, out);
            out.push_str(&format!(",'{}')", alphabet.char_of(*s).unwrap_or('?')));
        }
        Atom::EqLen(x, y) => {
            out.push_str("el(");
            render_term(x, alphabet, out);
            out.push(',');
            render_term(y, alphabet, out);
            out.push(')');
        }
        Atom::ShorterEq(x, y) => {
            out.push_str("shorteq(");
            render_term(x, alphabet, out);
            out.push(',');
            render_term(y, alphabet, out);
            out.push(')');
        }
        Atom::Shorter(x, y) => {
            out.push_str("shorter(");
            render_term(x, alphabet, out);
            out.push(',');
            render_term(y, alphabet, out);
            out.push(')');
        }
        Atom::LexLeq(x, y) => {
            out.push_str("lex(");
            render_term(x, alphabet, out);
            out.push(',');
            render_term(y, alphabet, out);
            out.push(')');
        }
        Atom::InLang(t, l) => {
            out.push_str("in(");
            render_term(t, alphabet, out);
            out.push_str(", /");
            out.push_str(&l.regex.render(alphabet));
            out.push_str("/)");
        }
        Atom::PL(x, y, l) => {
            out.push_str("pl(");
            render_term(x, alphabet, out);
            out.push(',');
            render_term(y, alphabet, out);
            out.push_str(", /");
            out.push_str(&l.regex.render(alphabet));
            out.push_str("/)");
        }
        Atom::ConcatEq(x, y, z) => {
            out.push_str("concat(");
            render_term(x, alphabet, out);
            out.push(',');
            render_term(y, alphabet, out);
            out.push(',');
            render_term(z, alphabet, out);
            out.push(')');
        }
        Atom::InsertAfter(x, p, y, s) => {
            out.push_str("ins(");
            render_term(x, alphabet, out);
            out.push(',');
            render_term(p, alphabet, out);
            out.push(',');
            render_term(y, alphabet, out);
            out.push_str(&format!(",'{}')", alphabet.char_of(*s).unwrap_or('?')));
        }
    }
}

fn render_formula(f: &Formula, alphabet: &Alphabet, prec: u8, out: &mut String) {
    // prec: 0 = lowest (iff), 1 = implies, 2 = or, 3 = and, 4 = unary
    match f {
        Formula::True => out.push_str("true"),
        Formula::False => out.push_str("false"),
        Formula::Atom(a) => render_atom(a, alphabet, out),
        Formula::Not(g) => {
            out.push('!');
            render_formula(g, alphabet, 4, out);
        }
        Formula::And(a, b) => {
            let open = prec > 3;
            if open {
                out.push('(');
            }
            render_formula(a, alphabet, 3, out);
            out.push_str(" & ");
            render_formula(b, alphabet, 3, out);
            if open {
                out.push(')');
            }
        }
        Formula::Or(a, b) => {
            let open = prec > 2;
            if open {
                out.push('(');
            }
            render_formula(a, alphabet, 2, out);
            out.push_str(" | ");
            render_formula(b, alphabet, 2, out);
            if open {
                out.push(')');
            }
        }
        Formula::Implies(a, b) => {
            let open = prec > 1;
            if open {
                out.push('(');
            }
            render_formula(a, alphabet, 2, out);
            out.push_str(" -> ");
            render_formula(b, alphabet, 1, out);
            if open {
                out.push(')');
            }
        }
        Formula::Iff(a, b) => {
            let open = prec > 0;
            if open {
                out.push('(');
            }
            render_formula(a, alphabet, 1, out);
            out.push_str(" <-> ");
            render_formula(b, alphabet, 1, out);
            if open {
                out.push(')');
            }
        }
        Formula::Exists(v, g) | Formula::Forall(v, g) => {
            let q = if matches!(f, Formula::Exists(..)) {
                "exists"
            } else {
                "forall"
            };
            let open = prec > 0;
            if open {
                out.push('(');
            }
            out.push_str(q);
            out.push(' ');
            out.push_str(v);
            out.push_str(". ");
            render_formula(g, alphabet, 0, out);
            if open {
                out.push(')');
            }
        }
        Formula::ExistsR(r, v, g) | Formula::ForallR(r, v, g) => {
            let base = if matches!(f, Formula::ExistsR(..)) {
                "exists"
            } else {
                "forall"
            };
            let suffix = match r {
                Restrict::Active => "A",
                Restrict::PrefixDom => "P",
                Restrict::LengthDom => "L",
            };
            let open = prec > 0;
            if open {
                out.push('(');
            }
            out.push_str(base);
            out.push_str(suffix);
            out.push(' ');
            out.push_str(v);
            out.push_str(". ");
            render_formula(g, alphabet, 0, out);
            if open {
                out.push(')');
            }
        }
    }
}

impl fmt::Display for Formula {
    /// Display with a generic lowercase alphabet (best effort).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(&Alphabet::lowercase()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn free_vars_respect_binders() {
        let f = Formula::exists("y", Formula::rel("R", vec![Term::var("x"), Term::var("y")]));
        let fv = f.free_vars();
        assert!(fv.contains("x"));
        assert!(!fv.contains("y"));
        assert_eq!(f.all_vars().len(), 2);
    }

    #[test]
    fn rename_free_stops_at_shadowing() {
        let f = Formula::eq(Term::var("x"), Term::var("y"))
            .and(Formula::exists("x", Formula::last_sym(Term::var("x"), 0)));
        let g = f.rename_free("x", "z");
        let fv = g.free_vars();
        assert!(fv.contains("z") && fv.contains("y") && !fv.contains("x"));
        // The bound occurrence is untouched.
        assert!(g.all_vars().contains("x"));
    }

    #[test]
    fn counts() {
        let f = Formula::exists(
            "y",
            Formula::forall("z", Formula::prefix(Term::var("y"), Term::var("z"))),
        );
        assert_eq!(f.num_quantifiers(), 2);
        assert!(f.size() >= 3);
    }

    #[test]
    fn rel_names_collected() {
        let f = Formula::rel("R", vec![Term::var("x")])
            .and(Formula::rel("S", vec![Term::var("x")]).not());
        let names = f.rel_names();
        assert!(names.contains("R") && names.contains("S"));
    }

    #[test]
    fn rendering_smoke() {
        let f = Formula::exists(
            "y",
            Formula::rel("R", vec![Term::var("y")])
                .and(Formula::last_sym(Term::var("y"), 0))
                .and(Formula::prefix(Term::var("x"), Term::var("y"))),
        );
        let text = f.render(&ab());
        assert!(text.contains("exists y"));
        assert!(text.contains("last(y,'a')"));
        assert!(text.contains("x <= y"));
    }

    #[test]
    fn and_all_or_all() {
        assert_eq!(Formula::and_all([]), Formula::True);
        assert_eq!(Formula::or_all([]), Formula::False);
        let f = Formula::and_all([Formula::True, Formula::False]);
        assert_eq!(f, Formula::True.and(Formula::False));
    }
}
