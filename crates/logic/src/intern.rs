//! Hash-consing for formulas: stable α-invariant fingerprints and a
//! structural interner.
//!
//! The compilation pipeline re-pays the formula → automaton cost on every
//! call even for the same query, so `strcalc-core` keys a compilation
//! cache on a **fingerprint** of the formula. Two requirements shape the
//! design here:
//!
//! 1. **Stability.** The fingerprint must not depend on `std`'s unspecified
//!    `Hash` output: it is a documented 64-bit value computed by explicit
//!    structural encoding (FNV-1a with a splitmix finalizer).
//! 2. **α-invariance.** The rewrite chain freshens bound variables
//!    (`freshen_bound`), so syntactically different but α-equivalent
//!    formulas must collide *on purpose*: bound variables are encoded by
//!    de Bruijn index, free variables by name. `∃x.P(x)` and `∃y.P(y)`
//!    fingerprint (and intern) identically.
//!
//! Language atoms (`in`/`pl`) carry an optional display name next to their
//! [`Regex`]; the name is presentation-only, so fingerprints and
//! [`alpha_eq`] look at the regex alone — `LIKE 'a%'` and an equivalent
//! hand-written `/a.*/` with identical ASTs dedupe.
//!
//! [`Interner`] builds on both: it hands out [`Arc<Formula>`]s such that
//! α-equivalent inputs share one allocation, with hit/miss counters for
//! observability.

use std::collections::HashMap;
use std::sync::Arc;

use strcalc_automata::Regex;

use crate::formula::{Atom, Formula, Lang, Restrict, Term};

/// Incremental FNV-1a/splitmix fingerprint writer. Public so downstream
/// crates (`strcalc-relational`, `strcalc-core`) can build compatible
/// stable fingerprints for their own cache-key components.
#[derive(Debug, Clone)]
pub struct Fp(u64);

impl Default for Fp {
    fn default() -> Self {
        Fp::new()
    }
}

impl Fp {
    pub fn new() -> Fp {
        Fp(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    pub fn u8(&mut self, b: u8) -> &mut Self {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        self
    }

    #[inline]
    pub fn u64(&mut self, x: u64) -> &mut Self {
        for b in x.to_le_bytes() {
            self.u8(b);
        }
        self
    }

    pub fn bytes(&mut self, bs: &[u8]) -> &mut Self {
        self.u64(bs.len() as u64);
        for &b in bs {
            self.u8(b);
        }
        self
    }

    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Finalizes with a splitmix-style mixer (FNV alone clusters in the
    /// low bits, which would skew shard selection downstream).
    pub fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

// Node tags. Every syntactic construct gets a distinct byte so that
// structurally different formulas cannot collide by concatenation
// ambiguity (lengths are also encoded for all variable-width parts).
mod tag {
    pub const TRUE: u8 = 0x01;
    pub const FALSE: u8 = 0x02;
    pub const NOT: u8 = 0x03;
    pub const AND: u8 = 0x04;
    pub const OR: u8 = 0x05;
    pub const IMPLIES: u8 = 0x06;
    pub const IFF: u8 = 0x07;
    pub const EXISTS: u8 = 0x08;
    pub const FORALL: u8 = 0x09;
    pub const EXISTS_R: u8 = 0x0a;
    pub const FORALL_R: u8 = 0x0b;

    pub const VAR_BOUND: u8 = 0x10;
    pub const VAR_FREE: u8 = 0x11;
    pub const CONST: u8 = 0x12;
    pub const APPEND: u8 = 0x13;
    pub const PREPEND: u8 = 0x14;
    pub const TRIM_LEADING: u8 = 0x15;

    pub const REL: u8 = 0x20;
    pub const EQ: u8 = 0x21;
    pub const PREFIX: u8 = 0x22;
    pub const STRICT_PREFIX: u8 = 0x23;
    pub const COVER: u8 = 0x24;
    pub const LAST_SYM: u8 = 0x25;
    pub const FIRST_SYM: u8 = 0x26;
    pub const PREPENDS: u8 = 0x27;
    pub const EQ_LEN: u8 = 0x28;
    pub const SHORTER_EQ: u8 = 0x29;
    pub const SHORTER: u8 = 0x2a;
    pub const LEX_LEQ: u8 = 0x2b;
    pub const IN_LANG: u8 = 0x2c;
    pub const PL: u8 = 0x2d;
    pub const CONCAT_EQ: u8 = 0x2e;
    pub const INSERT_AFTER: u8 = 0x2f;

    pub const RE_EMPTY: u8 = 0x30;
    pub const RE_EPSILON: u8 = 0x31;
    pub const RE_SYM: u8 = 0x32;
    pub const RE_ANY: u8 = 0x33;
    pub const RE_CONCAT: u8 = 0x34;
    pub const RE_UNION: u8 = 0x35;
    pub const RE_STAR: u8 = 0x36;

    pub const R_ACTIVE: u8 = 0x40;
    pub const R_PREFIX_DOM: u8 = 0x41;
    pub const R_LENGTH_DOM: u8 = 0x42;
}

/// The stable α-invariant fingerprint of a formula. See the module docs
/// for the exact invariance contract: `alpha_eq(f, g)` implies
/// `fingerprint(f) == fingerprint(g)`.
pub fn fingerprint(f: &Formula) -> u64 {
    let mut fp = Fp::new();
    let mut env: Vec<&str> = Vec::new();
    hash_formula(f, &mut env, &mut fp);
    fp.finish()
}

fn hash_formula<'a>(f: &'a Formula, env: &mut Vec<&'a str>, fp: &mut Fp) {
    match f {
        Formula::True => {
            fp.u8(tag::TRUE);
        }
        Formula::False => {
            fp.u8(tag::FALSE);
        }
        Formula::Atom(a) => hash_atom(a, env, fp),
        Formula::Not(g) => {
            fp.u8(tag::NOT);
            hash_formula(g, env, fp);
        }
        Formula::And(a, b) => {
            fp.u8(tag::AND);
            hash_formula(a, env, fp);
            hash_formula(b, env, fp);
        }
        Formula::Or(a, b) => {
            fp.u8(tag::OR);
            hash_formula(a, env, fp);
            hash_formula(b, env, fp);
        }
        Formula::Implies(a, b) => {
            fp.u8(tag::IMPLIES);
            hash_formula(a, env, fp);
            hash_formula(b, env, fp);
        }
        Formula::Iff(a, b) => {
            fp.u8(tag::IFF);
            hash_formula(a, env, fp);
            hash_formula(b, env, fp);
        }
        Formula::Exists(v, g) => {
            fp.u8(tag::EXISTS);
            env.push(v);
            hash_formula(g, env, fp);
            env.pop();
        }
        Formula::Forall(v, g) => {
            fp.u8(tag::FORALL);
            env.push(v);
            hash_formula(g, env, fp);
            env.pop();
        }
        Formula::ExistsR(r, v, g) => {
            fp.u8(tag::EXISTS_R);
            hash_restrict(*r, fp);
            env.push(v);
            hash_formula(g, env, fp);
            env.pop();
        }
        Formula::ForallR(r, v, g) => {
            fp.u8(tag::FORALL_R);
            hash_restrict(*r, fp);
            env.push(v);
            hash_formula(g, env, fp);
            env.pop();
        }
    }
}

fn hash_restrict(r: Restrict, fp: &mut Fp) {
    fp.u8(match r {
        Restrict::Active => tag::R_ACTIVE,
        Restrict::PrefixDom => tag::R_PREFIX_DOM,
        Restrict::LengthDom => tag::R_LENGTH_DOM,
    });
}

fn hash_atom(a: &Atom, env: &[&str], fp: &mut Fp) {
    let two = |x: &Term, y: &Term, t: u8, fp: &mut Fp| {
        fp.u8(t);
        hash_term(x, env, fp);
        hash_term(y, env, fp);
    };
    match a {
        Atom::Rel(name, terms) => {
            fp.u8(tag::REL);
            fp.str(name);
            fp.u64(terms.len() as u64);
            for t in terms {
                hash_term(t, env, fp);
            }
        }
        Atom::Eq(x, y) => two(x, y, tag::EQ, fp),
        Atom::Prefix(x, y) => two(x, y, tag::PREFIX, fp),
        Atom::StrictPrefix(x, y) => two(x, y, tag::STRICT_PREFIX, fp),
        Atom::Cover(x, y) => two(x, y, tag::COVER, fp),
        Atom::LastSym(t, s) => {
            fp.u8(tag::LAST_SYM);
            hash_term(t, env, fp);
            fp.u8(*s);
        }
        Atom::FirstSym(t, s) => {
            fp.u8(tag::FIRST_SYM);
            hash_term(t, env, fp);
            fp.u8(*s);
        }
        Atom::Prepends(x, y, s) => {
            fp.u8(tag::PREPENDS);
            hash_term(x, env, fp);
            hash_term(y, env, fp);
            fp.u8(*s);
        }
        Atom::EqLen(x, y) => two(x, y, tag::EQ_LEN, fp),
        Atom::ShorterEq(x, y) => two(x, y, tag::SHORTER_EQ, fp),
        Atom::Shorter(x, y) => two(x, y, tag::SHORTER, fp),
        Atom::LexLeq(x, y) => two(x, y, tag::LEX_LEQ, fp),
        Atom::InLang(t, l) => {
            fp.u8(tag::IN_LANG);
            hash_term(t, env, fp);
            hash_lang(l, fp);
        }
        Atom::PL(x, y, l) => {
            fp.u8(tag::PL);
            hash_term(x, env, fp);
            hash_term(y, env, fp);
            hash_lang(l, fp);
        }
        Atom::ConcatEq(x, y, z) => {
            fp.u8(tag::CONCAT_EQ);
            hash_term(x, env, fp);
            hash_term(y, env, fp);
            hash_term(z, env, fp);
        }
        Atom::InsertAfter(x, p, y, s) => {
            fp.u8(tag::INSERT_AFTER);
            hash_term(x, env, fp);
            hash_term(p, env, fp);
            hash_term(y, env, fp);
            fp.u8(*s);
        }
    }
}

fn hash_term(t: &Term, env: &[&str], fp: &mut Fp) {
    match t {
        Term::Var(v) => {
            // Innermost binder wins, matching shadowing semantics.
            match env.iter().rposition(|b| b == v) {
                Some(i) => {
                    fp.u8(tag::VAR_BOUND);
                    // De Bruijn index: distance to the binder.
                    fp.u64((env.len() - 1 - i) as u64);
                }
                None => {
                    fp.u8(tag::VAR_FREE);
                    fp.str(v);
                }
            }
        }
        Term::Const(s) => {
            fp.u8(tag::CONST);
            fp.bytes(s.syms());
        }
        Term::Append(inner, s) => {
            fp.u8(tag::APPEND);
            hash_term(inner, env, fp);
            fp.u8(*s);
        }
        Term::Prepend(s, inner) => {
            fp.u8(tag::PREPEND);
            fp.u8(*s);
            hash_term(inner, env, fp);
        }
        Term::TrimLeading(s, inner) => {
            fp.u8(tag::TRIM_LEADING);
            fp.u8(*s);
            hash_term(inner, env, fp);
        }
    }
}

fn hash_regex(r: &Regex, fp: &mut Fp) {
    match r {
        Regex::Empty => {
            fp.u8(tag::RE_EMPTY);
        }
        Regex::Epsilon => {
            fp.u8(tag::RE_EPSILON);
        }
        Regex::Sym(s) => {
            fp.u8(tag::RE_SYM);
            fp.u8(*s);
        }
        Regex::Any => {
            fp.u8(tag::RE_ANY);
        }
        Regex::Concat(a, b) => {
            fp.u8(tag::RE_CONCAT);
            hash_regex(a, fp);
            hash_regex(b, fp);
        }
        Regex::Union(a, b) => {
            fp.u8(tag::RE_UNION);
            hash_regex(a, fp);
            hash_regex(b, fp);
        }
        Regex::Star(a) => {
            fp.u8(tag::RE_STAR);
            hash_regex(a, fp);
        }
    }
}

fn hash_lang(l: &Lang, fp: &mut Fp) {
    // Display name deliberately excluded: it does not affect semantics.
    hash_regex(&l.regex, fp);
}

/// Stable fingerprint of a language atom's regex (display name
/// excluded, like [`fingerprint`]). Keys dense-DFA cache artifacts,
/// which depend only on the language and alphabet — not on the formula
/// or instance around them.
pub fn lang_fingerprint(l: &Lang) -> u64 {
    let mut fp = Fp::new();
    hash_lang(l, &mut fp);
    fp.finish()
}

/// α-equivalence: structural equality modulo bound-variable names (and
/// modulo `Lang` display names). The decision procedure the interner
/// uses to rule out fingerprint collisions.
pub fn alpha_eq(a: &Formula, b: &Formula) -> bool {
    let mut env_a: Vec<&str> = Vec::new();
    let mut env_b: Vec<&str> = Vec::new();
    alpha_eq_in(a, b, &mut env_a, &mut env_b)
}

fn alpha_eq_in<'a>(
    a: &'a Formula,
    b: &'a Formula,
    env_a: &mut Vec<&'a str>,
    env_b: &mut Vec<&'a str>,
) -> bool {
    use Formula::*;
    match (a, b) {
        (True, True) | (False, False) => true,
        (Atom(x), Atom(y)) => atom_eq(x, y, env_a, env_b),
        (Not(x), Not(y)) => alpha_eq_in(x, y, env_a, env_b),
        (And(x1, x2), And(y1, y2))
        | (Or(x1, x2), Or(y1, y2))
        | (Implies(x1, x2), Implies(y1, y2))
        | (Iff(x1, x2), Iff(y1, y2)) => {
            alpha_eq_in(x1, y1, env_a, env_b) && alpha_eq_in(x2, y2, env_a, env_b)
        }
        (Exists(va, fa), Exists(vb, fb)) | (Forall(va, fa), Forall(vb, fb)) => {
            env_a.push(va);
            env_b.push(vb);
            let out = alpha_eq_in(fa, fb, env_a, env_b);
            env_a.pop();
            env_b.pop();
            out
        }
        (ExistsR(ra, va, fa), ExistsR(rb, vb, fb)) | (ForallR(ra, va, fa), ForallR(rb, vb, fb)) => {
            if ra != rb {
                return false;
            }
            env_a.push(va);
            env_b.push(vb);
            let out = alpha_eq_in(fa, fb, env_a, env_b);
            env_a.pop();
            env_b.pop();
            out
        }
        _ => false,
    }
}

fn atom_eq(a: &Atom, b: &Atom, env_a: &[&str], env_b: &[&str]) -> bool {
    use Atom::*;
    let t = |x: &Term, y: &Term| term_eq(x, y, env_a, env_b);
    match (a, b) {
        (Rel(na, ta), Rel(nb, tb)) => {
            na == nb && ta.len() == tb.len() && ta.iter().zip(tb).all(|(x, y)| t(x, y))
        }
        (Eq(x1, x2), Eq(y1, y2))
        | (Prefix(x1, x2), Prefix(y1, y2))
        | (StrictPrefix(x1, x2), StrictPrefix(y1, y2))
        | (Cover(x1, x2), Cover(y1, y2))
        | (EqLen(x1, x2), EqLen(y1, y2))
        | (ShorterEq(x1, x2), ShorterEq(y1, y2))
        | (Shorter(x1, x2), Shorter(y1, y2))
        | (LexLeq(x1, x2), LexLeq(y1, y2)) => t(x1, y1) && t(x2, y2),
        (LastSym(x, sa), LastSym(y, sb)) | (FirstSym(x, sa), FirstSym(y, sb)) => {
            sa == sb && t(x, y)
        }
        (Prepends(x1, x2, sa), Prepends(y1, y2, sb)) => sa == sb && t(x1, y1) && t(x2, y2),
        (InLang(x, la), InLang(y, lb)) => la.regex == lb.regex && t(x, y),
        (PL(x1, x2, la), PL(y1, y2, lb)) => la.regex == lb.regex && t(x1, y1) && t(x2, y2),
        (ConcatEq(x1, x2, x3), ConcatEq(y1, y2, y3)) => t(x1, y1) && t(x2, y2) && t(x3, y3),
        (InsertAfter(x1, x2, x3, sa), InsertAfter(y1, y2, y3, sb)) => {
            sa == sb && t(x1, y1) && t(x2, y2) && t(x3, y3)
        }
        _ => false,
    }
}

fn term_eq(a: &Term, b: &Term, env_a: &[&str], env_b: &[&str]) -> bool {
    match (a, b) {
        (Term::Var(va), Term::Var(vb)) => {
            let ia = env_a.iter().rposition(|x| x == va);
            let ib = env_b.iter().rposition(|x| x == vb);
            match (ia, ib) {
                // Both bound: same de Bruijn index.
                (Some(i), Some(j)) => env_a.len() - 1 - i == env_b.len() - 1 - j,
                // Both free: same name.
                (None, None) => va == vb,
                _ => false,
            }
        }
        (Term::Const(x), Term::Const(y)) => x == y,
        (Term::Append(x, sa), Term::Append(y, sb)) => sa == sb && term_eq(x, y, env_a, env_b),
        (Term::Prepend(sa, x), Term::Prepend(sb, y))
        | (Term::TrimLeading(sa, x), Term::TrimLeading(sb, y)) => {
            sa == sb && term_eq(x, y, env_a, env_b)
        }
        _ => false,
    }
}

/// A hash-consing table: α-equivalent formulas intern to one shared
/// [`Arc`]. Fingerprint collisions are resolved by [`alpha_eq`], so a
/// collision can never conflate distinct formulas.
#[derive(Debug, Default)]
pub struct Interner {
    table: HashMap<u64, Vec<Arc<Formula>>>,
    hits: u64,
    misses: u64,
}

impl Interner {
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `f`, returning the canonical shared node for its
    /// α-equivalence class (and that class's fingerprint).
    pub fn intern(&mut self, f: &Formula) -> (Arc<Formula>, u64) {
        let fp = fingerprint(f);
        let bucket = self.table.entry(fp).or_default();
        if let Some(existing) = bucket.iter().find(|g| alpha_eq(g, f)) {
            self.hits += 1;
            return (Arc::clone(existing), fp);
        }
        self.misses += 1;
        let node = Arc::new(f.clone());
        bucket.push(Arc::clone(&node));
        (node, fp)
    }

    /// Number of distinct α-equivalence classes stored.
    pub fn len(&self) -> usize {
        self.table.values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Interns that found an existing node.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Interns that allocated a new node.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;
    use crate::transform::freshen_bound;
    use strcalc_alphabet::Alphabet;

    fn f(src: &str) -> Formula {
        parse_formula(&Alphabet::ab(), src).unwrap()
    }

    #[test]
    fn alpha_equivalent_formulas_share_a_fingerprint() {
        let cases = [
            ("exists y. (x <= y)", "exists z. (x <= z)"),
            (
                "exists y. (U(y) & x <= y & last(x, 'a'))",
                "exists q. (U(q) & x <= q & last(x, 'a'))",
            ),
            (
                "forall y. exists z. (y <= z & el(y, z))",
                "forall a. exists b. (a <= b & el(a, b))",
            ),
        ];
        for (a, b) in cases {
            let (fa, fb) = (f(a), f(b));
            assert!(alpha_eq(&fa, &fb), "{a} !~ {b}");
            assert_eq!(fingerprint(&fa), fingerprint(&fb), "{a} vs {b}");
        }
    }

    #[test]
    fn shadowing_is_respected() {
        // Inner binder shadows: the x in the body refers to different
        // binders in these two, so they are NOT α-equivalent.
        let a = f("exists x. exists y. last(x, 'a')");
        let b = f("exists x. exists y. last(y, 'a')");
        assert!(!alpha_eq(&a, &b));
        assert_ne!(fingerprint(&a), fingerprint(&b));
        // But consistent renaming of the shadowing binder is fine.
        let c = f("exists x. exists z. last(z, 'a')");
        assert!(alpha_eq(&b, &c));
        assert_eq!(fingerprint(&b), fingerprint(&c));
    }

    #[test]
    fn free_variables_fingerprint_by_name() {
        assert_ne!(
            fingerprint(&f("last(x, 'a')")),
            fingerprint(&f("last(y, 'a')"))
        );
        assert!(!alpha_eq(&f("last(x, 'a')"), &f("last(y, 'a')")));
        // A free occurrence is not the same as a bound one.
        assert!(!alpha_eq(
            &f("exists x. last(x, 'a')"),
            &f("exists y. last(x, 'a')")
        ));
    }

    #[test]
    fn distinct_formulas_fingerprint_apart() {
        let pool = [
            "x <= y",
            "x < y",
            "y <= x",
            "x = y",
            "el(x, y)",
            "last(x, 'a')",
            "last(x, 'b')",
            "first(x, 'a')",
            "U(x)",
            "V(x)",
            "U(x) & U(y)",
            "exists y. (x <= y)",
            "existsA y. (x <= y)",
            "forall y. (x <= y)",
            "in(x, /(ab)*/)",
            "in(x, /(ba)*/)",
        ];
        let mut seen = HashMap::new();
        for src in pool {
            let fp = fingerprint(&f(src));
            if let Some(prev) = seen.insert(fp, src) {
                panic!("collision between {prev:?} and {src:?}");
            }
        }
    }

    #[test]
    fn freshened_rewrites_dedupe_in_the_interner() {
        let mut interner = Interner::new();
        let orig = f("exists y. (U(y) & x <= y) & exists y. (U(y) & y <= x)");
        let fresh = freshen_bound(&orig);
        assert_ne!(orig, fresh, "freshening renames bound vars");
        let (a, fpa) = interner.intern(&orig);
        let (b, fpb) = interner.intern(&fresh);
        assert!(Arc::ptr_eq(&a, &b), "α-equivalent formulas share a node");
        assert_eq!(fpa, fpb);
        assert_eq!(interner.len(), 1);
        assert_eq!(interner.hits(), 1);
        assert_eq!(interner.misses(), 1);
    }

    #[test]
    fn lang_display_names_do_not_affect_identity() {
        use crate::formula::{Lang, Term};
        use strcalc_automata::Regex;
        let named = Formula::in_lang(
            Term::var("x"),
            Lang::named("LIKE a%", Regex::Sym(0).concat(Regex::any_string())),
        );
        let anon = Formula::in_lang(
            Term::var("x"),
            Lang::new(Regex::Sym(0).concat(Regex::any_string())),
        );
        assert!(alpha_eq(&named, &anon));
        assert_eq!(fingerprint(&named), fingerprint(&anon));
    }

    #[test]
    fn fingerprints_are_stable_across_runs() {
        // Pinned value: the fingerprint is part of the cache-key contract,
        // so an accidental encoding change should fail loudly here.
        assert_eq!(fingerprint(&Formula::True), 12254457192590784505);
    }
}
