//! First-order logic over the string structures of the paper.
//!
//! The paper studies relational calculus `RC(SC, M)` where `M` ranges over
//!
//! * `S       = (Σ*, ≺, (L_a)_{a∈Σ})`
//! * `S_left  = S + (F_a)_{a∈Σ}`            (graph of `x ↦ a·x`)
//! * `S_reg   = S + (P_L)_{L regular}`
//! * `S_len   = S + el`                      (equal length)
//! * `S_concat` (the cautionary, computationally complete extension)
//!
//! This crate provides the shared formula language: [`Term`]s (variables,
//! constants, and the string functions `l_a`, `f_a`, `TRIM_a` which lower
//! to relational atoms), [`Atom`]s for every primitive of every structure,
//! [`Formula`]s with both unrestricted and *restricted* quantifiers (the
//! paper's `∃x ∈ adom`, `∃x ∈ dom↓`, `∃|x| ≤ adom`), a concrete-syntax
//! [`parser`], transformations (negation normal form, bound-variable
//! freshening, quantifier rank), and **fragment inference**
//! ([`StructureClass`]): the least structure in Figure 1's lattice that a
//! formula's atoms fit into.

pub mod compile;
pub mod formula;
pub mod intern;
pub mod parser;
pub mod rewrite;
pub mod transform;

pub use compile::{CompileError, Compiled, Compiler, RelResolver, Resolved};
pub use formula::{Atom, Formula, Lang, Restrict, Term};
pub use intern::{alpha_eq, fingerprint, lang_fingerprint, Fp, Interner};
pub use parser::parse_formula;
pub use rewrite::{RewriteStep, RewriteTrace, Rewriter, TraceEntry};
pub use transform::StructureClass;

use std::fmt;

/// Errors from formula construction, parsing and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// Concrete-syntax parse failure.
    Parse { pos: usize, msg: String },
    /// A regex inside `in`/`pl` failed to parse or compile.
    Lang(String),
    /// Star-freeness analysis hit the monoid cap.
    StarFreeUndecided(String),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::Parse { pos, msg } => write!(f, "parse error at {pos}: {msg}"),
            LogicError::Lang(msg) => write!(f, "language error: {msg}"),
            LogicError::StarFreeUndecided(msg) => {
                write!(f, "star-freeness analysis failed: {msg}")
            }
        }
    }
}

impl std::error::Error for LogicError {}
