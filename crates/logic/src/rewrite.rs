//! A composable rewrite driver over [`Formula`]s.
//!
//! The optimizer pipeline applies a chain of semantics-preserving
//! transformations (`nnf → lower_terms → simplify`). [`Rewriter`] makes
//! that chain explicit and *observable*: [`Rewriter::rewrite_traced`]
//! records the before/after formula of every step, so a downstream
//! translation validator (`strcalc-verify`) can certify each step
//! independently and point at the exact transformation that broke.
//!
//! The step functions are ordinary `Fn(&Formula) -> Formula` closures,
//! which is what lets tests inject a deliberately broken step and watch
//! the validator refute it.

use crate::formula::Formula;
use crate::transform::{lower_terms, nnf, simplify};

/// One named transformation in a rewrite chain.
pub struct RewriteStep {
    name: &'static str,
    apply: Box<dyn Fn(&Formula) -> Formula>,
}

impl RewriteStep {
    pub fn new(name: &'static str, apply: impl Fn(&Formula) -> Formula + 'static) -> RewriteStep {
        RewriteStep {
            name,
            apply: Box::new(apply),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn apply(&self, f: &Formula) -> Formula {
        (self.apply)(f)
    }
}

impl std::fmt::Debug for RewriteStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RewriteStep")
            .field("name", &self.name)
            .finish()
    }
}

/// The before/after record of one applied step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    pub name: &'static str,
    pub before: Formula,
    pub after: Formula,
}

impl TraceEntry {
    /// A step that returned its input unchanged needs no certification.
    pub fn is_identity(&self) -> bool {
        self.before == self.after
    }
}

/// The full record of a chain application: the original input, the final
/// output, and every intermediate step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteTrace {
    pub input: Formula,
    pub output: Formula,
    pub steps: Vec<TraceEntry>,
}

/// A chain of named rewrite steps applied left to right.
#[derive(Debug, Default)]
pub struct Rewriter {
    steps: Vec<RewriteStep>,
}

impl Rewriter {
    /// An empty chain (the identity rewrite).
    pub fn new() -> Rewriter {
        Rewriter::default()
    }

    /// The standard optimizer chain: `nnf → lower_terms → simplify`.
    pub fn standard() -> Rewriter {
        Rewriter::new()
            .step("nnf", nnf)
            .step("lower_terms", lower_terms)
            .step("simplify", simplify)
    }

    /// Appends a named step to the chain.
    pub fn step(
        mut self,
        name: &'static str,
        apply: impl Fn(&Formula) -> Formula + 'static,
    ) -> Rewriter {
        self.steps.push(RewriteStep::new(name, apply));
        self
    }

    /// The step names, in application order.
    pub fn step_names(&self) -> Vec<&'static str> {
        self.steps.iter().map(|s| s.name).collect()
    }

    /// Applies the chain and returns only the final formula.
    pub fn rewrite(&self, f: &Formula) -> Formula {
        self.rewrite_traced(f).output
    }

    /// Applies the chain, recording the before/after of every step.
    pub fn rewrite_traced(&self, f: &Formula) -> RewriteTrace {
        let mut current = f.clone();
        let mut steps = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let after = step.apply(&current);
            steps.push(TraceEntry {
                name: step.name,
                before: current,
                after: after.clone(),
            });
            current = after;
        }
        RewriteTrace {
            input: f.clone(),
            output: current,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;
    use strcalc_alphabet::Alphabet;

    #[test]
    fn standard_chain_matches_manual_composition() {
        let sigma = Alphabet::ab();
        let f = parse_formula(&sigma, "!(exists y. (x <= y & !last(y,'a')))").unwrap();
        let trace = Rewriter::standard().rewrite_traced(&f);
        assert_eq!(trace.output, simplify(&lower_terms(&nnf(&f))));
        assert_eq!(trace.steps.len(), 3);
        assert_eq!(trace.input, f);
        assert_eq!(trace.steps[0].before, f);
        assert_eq!(trace.steps[2].after, trace.output);
        // Steps are chained: each step's input is the previous output.
        assert_eq!(trace.steps[1].before, trace.steps[0].after);
        assert_eq!(trace.steps[2].before, trace.steps[1].after);
    }

    #[test]
    fn empty_chain_is_identity() {
        let sigma = Alphabet::ab();
        let f = parse_formula(&sigma, "x <= y").unwrap();
        let trace = Rewriter::new().rewrite_traced(&f);
        assert_eq!(trace.output, f);
        assert!(trace.steps.is_empty());
    }

    #[test]
    fn injected_step_is_traced() {
        let sigma = Alphabet::ab();
        let f = parse_formula(&sigma, "x <= y & last(x,'a')").unwrap();
        let rw = Rewriter::new().step("drop-to-true", |_| Formula::True);
        let trace = rw.rewrite_traced(&f);
        assert_eq!(trace.output, Formula::True);
        assert_eq!(trace.steps[0].name, "drop-to-true");
        assert!(!trace.steps[0].is_identity());
    }
}
