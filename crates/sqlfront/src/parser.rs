//! SQL tokenizer, AST and parser.

use std::collections::BTreeMap;
use std::fmt;

use strcalc_alphabet::{Alphabet, Str, Sym};

/// Table schema catalog: table name → ordered column names.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Vec<String>>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    pub fn add_table(&mut self, name: impl Into<String>, columns: &[&str]) -> &mut Catalog {
        self.tables.insert(
            name.into().to_lowercase(),
            columns.iter().map(|c| c.to_lowercase()).collect(),
        );
        self
    }

    pub fn columns(&self, table: &str) -> Option<&[String]> {
        self.tables.get(&table.to_lowercase()).map(Vec::as_slice)
    }
}

/// Parse/compile errors. Errors that originate from a stable analyzer
/// diagnostic (static analysis, translation validation, planlint)
/// carry its code so callers can dispatch without parsing the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    pub pos: usize,
    pub msg: String,
    /// Stable diagnostic code (`SA0xx`/`SA1xx`/`SA2xx`) when the error
    /// came from an analyzer pass; `None` for parse/catalog errors.
    pub code: Option<String>,
}

impl SqlError {
    pub fn new(pos: usize, msg: impl Into<String>) -> SqlError {
        SqlError {
            pos,
            msg: msg.into(),
            code: None,
        }
    }

    /// Attaches the diagnostic code the error originated from.
    pub fn with_code(mut self, code: impl Into<String>) -> SqlError {
        self.code = Some(code.into());
        self
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.code {
            Some(code) => write!(f, "SQL error [{code}] at {}: {}", self.pos, self.msg),
            None => write!(f, "SQL error at {}: {}", self.pos, self.msg),
        }
    }
}

impl std::error::Error for SqlError {}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub table: String,
    pub alias: String,
}

/// A term in a condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlTerm {
    /// `alias.column` or bare `column`.
    Col {
        qualifier: Option<String>,
        column: String,
    },
    /// A string literal.
    Lit(Str),
    /// `TRIM(LEADING 'c' FROM t)`.
    TrimLeading(Sym, Box<SqlTerm>),
}

/// A WHERE condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    And(Box<Cond>, Box<Cond>),
    Or(Box<Cond>, Box<Cond>),
    Not(Box<Cond>),
    Like {
        term: SqlTerm,
        pattern: String,
        negated: bool,
    },
    Similar {
        term: SqlTerm,
        pattern: String,
        negated: bool,
    },
    Eq(SqlTerm, SqlTerm),
    LexLt(SqlTerm, SqlTerm),
    LexLe(SqlTerm, SqlTerm),
    Prefix(SqlTerm, SqlTerm),
    LenCmp {
        left: SqlTerm,
        right: SqlTerm,
        op: LenOp,
    },
    Exists(Box<Select>),
    In {
        term: SqlTerm,
        subquery: Box<Select>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LenOp {
    Eq,
    Lt,
    Le,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub columns: Vec<SqlTerm>,
    pub from: Vec<TableRef>,
    pub cond: Option<Cond>,
}

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Word(String), // lowercased identifier or keyword
    Lit(String),  // 'single quoted'
    Comma,
    Dot,
    LParen,
    RParen,
    Eq,
    Lt,
    Le,
}

fn tokenize(sql: &str) -> Result<Vec<(usize, Tok)>, SqlError> {
    let chars: Vec<char> = sql.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let start = i;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push((start, Tok::Comma));
                i += 1;
            }
            '.' => {
                out.push((start, Tok::Dot));
                i += 1;
            }
            '(' => {
                out.push((start, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((start, Tok::RParen));
                i += 1;
            }
            '=' => {
                out.push((start, Tok::Eq));
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push((start, Tok::Le));
                    i += 2;
                } else {
                    out.push((start, Tok::Lt));
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let lit_start = i;
                while i < chars.len() && chars[i] != '\'' {
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(SqlError::new(start, "unterminated string literal"));
                }
                out.push((start, Tok::Lit(chars[lit_start..i].iter().collect())));
                i += 1;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let word: String = chars[i..j].iter().collect();
                out.push((start, Tok::Word(word.to_lowercase())));
                i = j;
            }
            other => return Err(SqlError::new(i, format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// Parses a SELECT statement. The alphabet validates string literals
/// inside `TRIM(LEADING 'c' …)`; `LIKE`/`SIMILAR` patterns are validated
/// at compile time.
pub fn parse_select(alphabet: &Alphabet, sql: &str) -> Result<Select, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = P {
        alphabet,
        toks: &tokens,
        pos: 0,
    };
    let stmt = p.select()?;
    if p.pos != p.toks.len() {
        return Err(p.err("trailing input"));
    }
    Ok(stmt)
}

struct P<'a> {
    alphabet: &'a Alphabet,
    toks: &'a [(usize, Tok)],
    pos: usize,
}

impl<'a> P<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(_, t)| t)
    }

    fn err(&self, msg: impl Into<String>) -> SqlError {
        SqlError::new(
            self.toks
                .get(self.pos)
                .map(|(p, _)| *p)
                .unwrap_or(usize::MAX),
            msg,
        )
    }

    fn keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.peek() {
            Some(Tok::Word(w)) if w == kw => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected {}", kw.to_uppercase()))),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Word(w)) if w == kw)
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.peek() {
            Some(Tok::Word(w)) if !is_reserved(w) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            _ => Err(self.err("expected an identifier")),
        }
    }

    fn eat(&mut self, t: &Tok) -> Result<(), SqlError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn select(&mut self) -> Result<Select, SqlError> {
        self.keyword("select")?;
        let mut columns = vec![self.term()?];
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            columns.push(self.term()?);
        }
        self.keyword("from")?;
        let mut from = vec![self.table_ref()?];
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            from.push(self.table_ref()?);
        }
        let cond = if self.is_keyword("where") {
            self.pos += 1;
            Some(self.cond()?)
        } else {
            None
        };
        Ok(Select {
            columns,
            from,
            cond,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let table = self.ident()?;
        let alias = match self.peek() {
            Some(Tok::Word(w)) if !is_reserved(w) => {
                let a = w.clone();
                self.pos += 1;
                a
            }
            _ => table.clone(),
        };
        Ok(TableRef { table, alias })
    }

    fn cond(&mut self) -> Result<Cond, SqlError> {
        let mut c = self.cond_and()?;
        while self.is_keyword("or") {
            self.pos += 1;
            c = Cond::Or(Box::new(c), Box::new(self.cond_and()?));
        }
        Ok(c)
    }

    fn cond_and(&mut self) -> Result<Cond, SqlError> {
        let mut c = self.cond_unary()?;
        while self.is_keyword("and") {
            self.pos += 1;
            c = Cond::And(Box::new(c), Box::new(self.cond_unary()?));
        }
        Ok(c)
    }

    fn cond_unary(&mut self) -> Result<Cond, SqlError> {
        if self.is_keyword("not") {
            self.pos += 1;
            return Ok(Cond::Not(Box::new(self.cond_unary()?)));
        }
        if self.is_keyword("exists") {
            self.pos += 1;
            self.eat(&Tok::LParen)?;
            let sub = self.select()?;
            self.eat(&Tok::RParen)?;
            return Ok(Cond::Exists(Box::new(sub)));
        }
        if self.peek() == Some(&Tok::LParen) && self.looks_like_cond_paren() {
            self.pos += 1;
            let c = self.cond()?;
            self.eat(&Tok::RParen)?;
            return Ok(c);
        }
        if self.is_keyword("length") {
            return self.len_cmp();
        }
        if self.is_keyword("prefix") {
            self.pos += 1;
            self.eat(&Tok::LParen)?;
            let a = self.term()?;
            self.eat(&Tok::Comma)?;
            let b = self.term()?;
            self.eat(&Tok::RParen)?;
            return Ok(Cond::Prefix(a, b));
        }
        // term-headed predicates.
        let t = self.term()?;
        if self.is_keyword("not") {
            self.pos += 1;
            if self.is_keyword("like") {
                self.pos += 1;
                let pat = self.literal()?;
                return Ok(Cond::Like {
                    term: t,
                    pattern: pat,
                    negated: true,
                });
            }
            if self.is_keyword("similar") {
                self.pos += 1;
                self.keyword("to")?;
                let pat = self.literal()?;
                return Ok(Cond::Similar {
                    term: t,
                    pattern: pat,
                    negated: true,
                });
            }
            return Err(self.err("expected LIKE or SIMILAR after NOT"));
        }
        if self.is_keyword("like") {
            self.pos += 1;
            let pat = self.literal()?;
            return Ok(Cond::Like {
                term: t,
                pattern: pat,
                negated: false,
            });
        }
        if self.is_keyword("similar") {
            self.pos += 1;
            self.keyword("to")?;
            let pat = self.literal()?;
            return Ok(Cond::Similar {
                term: t,
                pattern: pat,
                negated: false,
            });
        }
        if self.is_keyword("in") {
            self.pos += 1;
            self.eat(&Tok::LParen)?;
            let sub = self.select()?;
            self.eat(&Tok::RParen)?;
            return Ok(Cond::In {
                term: t,
                subquery: Box::new(sub),
            });
        }
        match self.peek() {
            Some(Tok::Eq) => {
                self.pos += 1;
                Ok(Cond::Eq(t, self.term()?))
            }
            Some(Tok::Lt) => {
                self.pos += 1;
                Ok(Cond::LexLt(t, self.term()?))
            }
            Some(Tok::Le) => {
                self.pos += 1;
                Ok(Cond::LexLe(t, self.term()?))
            }
            _ => Err(self.err("expected a predicate")),
        }
    }

    /// Disambiguates `( cond )` from a parenthesized… we have no
    /// parenthesized terms, so any `(` here opens a condition.
    fn looks_like_cond_paren(&self) -> bool {
        true
    }

    fn len_cmp(&mut self) -> Result<Cond, SqlError> {
        self.keyword("length")?;
        self.eat(&Tok::LParen)?;
        let left = self.term()?;
        self.eat(&Tok::RParen)?;
        let op = match self.peek() {
            Some(Tok::Eq) => LenOp::Eq,
            Some(Tok::Lt) => LenOp::Lt,
            Some(Tok::Le) => LenOp::Le,
            _ => return Err(self.err("expected =, < or <= after LENGTH(…)")),
        };
        self.pos += 1;
        self.keyword("length")?;
        self.eat(&Tok::LParen)?;
        let right = self.term()?;
        self.eat(&Tok::RParen)?;
        Ok(Cond::LenCmp { left, right, op })
    }

    fn term(&mut self) -> Result<SqlTerm, SqlError> {
        if self.is_keyword("trim") {
            self.pos += 1;
            self.eat(&Tok::LParen)?;
            self.keyword("leading")?;
            let lit = self.literal()?;
            let mut chars = lit.chars();
            let (Some(c), None) = (chars.next(), chars.next()) else {
                return Err(self.err("TRIM LEADING takes a single character"));
            };
            let sym = self
                .alphabet
                .sym_of(c)
                .map_err(|e| self.err(e.to_string()))?;
            self.keyword("from")?;
            let inner = self.term()?;
            self.eat(&Tok::RParen)?;
            return Ok(SqlTerm::TrimLeading(sym, Box::new(inner)));
        }
        match self.peek().cloned() {
            Some(Tok::Lit(text)) => {
                self.pos += 1;
                let s = self
                    .alphabet
                    .parse(&text)
                    .map_err(|e| self.err(e.to_string()))?;
                Ok(SqlTerm::Lit(s))
            }
            Some(Tok::Word(w)) if !is_reserved(&w) => {
                self.pos += 1;
                if self.peek() == Some(&Tok::Dot) {
                    if let Some(Tok::Word(col)) = self.peek2().cloned() {
                        self.pos += 2;
                        return Ok(SqlTerm::Col {
                            qualifier: Some(w),
                            column: col,
                        });
                    }
                    return Err(self.err("expected a column after '.'"));
                }
                Ok(SqlTerm::Col {
                    qualifier: None,
                    column: w,
                })
            }
            _ => Err(self.err("expected a term")),
        }
    }

    fn literal(&mut self) -> Result<String, SqlError> {
        match self.peek().cloned() {
            Some(Tok::Lit(text)) => {
                self.pos += 1;
                Ok(text)
            }
            _ => Err(self.err("expected a string literal")),
        }
    }
}

fn is_reserved(w: &str) -> bool {
    matches!(
        w,
        "select"
            | "from"
            | "where"
            | "and"
            | "or"
            | "not"
            | "like"
            | "similar"
            | "to"
            | "exists"
            | "in"
            | "length"
            | "prefix"
            | "trim"
            | "leading"
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn parses_basic_select() {
        let s = parse_select(&ab(), "SELECT f.name FROM faculty f WHERE f.name LIKE 'a%'").unwrap();
        assert_eq!(s.columns.len(), 1);
        assert_eq!(s.from[0].table, "faculty");
        assert_eq!(s.from[0].alias, "f");
        assert!(matches!(s.cond, Some(Cond::Like { negated: false, .. })));
    }

    #[test]
    fn parses_connectives_and_predicates() {
        let s = parse_select(
            &ab(),
            "SELECT r.x FROM r WHERE (r.x LIKE 'a%' OR r.x SIMILAR TO '(ab)*') \
             AND NOT r.x = 'ab' AND LENGTH(r.x) <= LENGTH(r.y) AND PREFIX(r.x, r.y) \
             AND r.x < r.y",
        )
        .unwrap();
        let cond = s.cond.unwrap();
        // Just structural smoke tests.
        fn count_preds(c: &Cond) -> usize {
            match c {
                Cond::And(a, b) | Cond::Or(a, b) => count_preds(a) + count_preds(b),
                Cond::Not(a) => count_preds(a),
                _ => 1,
            }
        }
        assert_eq!(count_preds(&cond), 6);
    }

    #[test]
    fn parses_subqueries() {
        let s = parse_select(
            &ab(),
            "SELECT f.name FROM faculty f WHERE EXISTS (SELECT d.head FROM dept d \
             WHERE d.head = f.name) AND f.name IN (SELECT u.x FROM u)",
        )
        .unwrap();
        assert!(matches!(s.cond, Some(Cond::And(..))));
    }

    #[test]
    fn parses_trim() {
        let s = parse_select(
            &ab(),
            "SELECT r.x FROM r WHERE TRIM(LEADING 'a' FROM r.x) = r.y",
        )
        .unwrap();
        match s.cond.unwrap() {
            Cond::Eq(SqlTerm::TrimLeading(0, _), _) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse_select(&ab(), "SELECT FROM r").is_err());
        assert!(parse_select(&ab(), "SELECT r.x FROM r WHERE").is_err());
        assert!(parse_select(&ab(), "SELECT r.x FROM r WHERE r.x LIKE").is_err());
        assert!(parse_select(&ab(), "SELECT r.x FROM r WHERE r.x = 'unterminated").is_err());
        assert!(parse_select(&ab(), "SELECT r.x FROM r extra garbage ( ").is_err());
        assert!(parse_select(
            &ab(),
            "SELECT r.x FROM r WHERE TRIM(LEADING 'ab' FROM r.x) = r.y"
        )
        .is_err());
    }
}
