//! Compilation of SELECT statements into calculus queries, with static
//! analysis in the loop: every compile runs `strcalc-analyze` over the
//! generated formula (analyze-then-compile), and per-code lint levels
//! decide whether its diagnostics are dropped, attached, or fatal.

use std::sync::Arc;

use strcalc_alphabet::Alphabet;
use strcalc_analyze::{Analysis, Analyzer, Code, LintLevel, Severity};
use strcalc_automata::{compile_similar, like};
use strcalc_core::plan::{PlanChecker, PlanLintReport};
use strcalc_core::{
    AutomataEngine, AutomatonCache, Calculus, CoreError, Plan, Planner, PreparedQuery, Query,
};
use strcalc_logic::{Formula, Lang, Rewriter, Term};
use strcalc_verify::{Validator, VerifiedRewriter};

use crate::parser::{Catalog, Cond, LenOp, Select, SqlError, SqlTerm};

/// The result of compiling a SELECT: a validated calculus [`Query`] (its
/// `calculus` field is the **least sufficient** calculus for the
/// statement's string predicates), display names for the output columns,
/// and the static [`Analysis`] of the generated formula.
#[derive(Debug, Clone)]
pub struct CompiledSql {
    pub query: Query,
    pub column_names: Vec<String>,
    /// Static analysis of the compiled formula, shaped by the lint
    /// configuration the statement was compiled under. `None` only when
    /// every code was set to [`LintLevel::Allow`] *and* no diagnostics
    /// survived — the field always carries the pass summaries otherwise.
    pub analysis: Option<Analysis>,
}

impl CompiledSql {
    /// The inferred minimal calculus.
    pub fn calculus(&self) -> Calculus {
        self.query.calculus
    }

    /// Surviving diagnostics at warning level or above.
    pub fn warnings(&self) -> Vec<String> {
        match &self.analysis {
            None => Vec::new(),
            Some(a) => a
                .diagnostics
                .iter()
                .filter(|d| d.severity >= Severity::Warning)
                .map(|d| d.render())
                .collect(),
        }
    }

    /// Prepares the compiled query on `engine` for repeated evaluation —
    /// the SQL-facing entry to the prepared-query subsystem. Subsequent
    /// evals on the handle reuse the compiled automaton (and the
    /// engine's [`AutomatonCache`], when one is attached).
    pub fn prepare(&self, engine: &AutomataEngine) -> PreparedQuery {
        engine.prepare(self.query.clone())
    }

    /// Lowers the compiled query into an executable [`Plan`] under
    /// `planner` — the same decision procedure `run_sql` evaluates
    /// through.
    pub fn plan(&self, planner: &Planner) -> Result<Plan, CoreError> {
        planner.plan(&self.query)
    }

    /// `EXPLAIN`: the plan for this SELECT, rendered as text, without
    /// executing anything.
    pub fn explain(&self) -> Result<String, CoreError> {
        Ok(self.plan(&Planner::new())?.explain_text())
    }

    /// `EXPLAIN (FORMAT JSON)`: the plan as a JSON document, without
    /// executing anything.
    pub fn explain_json(&self) -> Result<String, CoreError> {
        Ok(self.plan(&Planner::new())?.explain_json())
    }

    /// Runs the plan-IR verifier over this statement's plan and returns
    /// the full [`PlanLintReport`] — the SQL-facing planlint entry. The
    /// planner already gates every pass, so a report with errors can
    /// only come from a plan mutated after planning; the interesting
    /// payload here is the SA210 certificate note and the per-node
    /// resource bounds on [`Plan::root`].
    pub fn planlint(&self, planner: &Planner) -> Result<PlanLintReport, CoreError> {
        let plan = self.plan(planner)?;
        Ok(PlanChecker::for_plan(&plan).check(&plan.root))
    }
}

/// One in-scope table occurrence.
#[derive(Debug, Clone)]
struct ScopeEntry {
    alias: String,
    table: String,
    /// Unique prefix for this occurrence's column variables.
    prefix: String,
}

struct Ctx<'a> {
    alphabet: &'a Alphabet,
    catalog: &'a Catalog,
    counter: usize,
}

impl<'a> Ctx<'a> {
    fn fresh_prefix(&mut self, alias: &str) -> String {
        self.counter += 1;
        format!("{}_{}", alias, self.counter)
    }
}

/// Compiles a SELECT statement with default lints (everything at
/// [`LintLevel::Warn`]): the analysis rides along on the result and
/// never fails a statement the calculus itself accepts.
pub fn compile_select(
    alphabet: &Alphabet,
    catalog: &Catalog,
    stmt: &Select,
) -> Result<CompiledSql, SqlError> {
    compile_select_analyzed(alphabet, catalog, stmt, &[])
}

/// Compiles a SELECT statement under an explicit lint configuration:
/// `lints` overrides per-code levels on top of the warn-by-default
/// baseline ([`LintLevel::Allow`] drops a code, [`LintLevel::Deny`]
/// escalates it to an error). Compilation **fails** when any diagnostic
/// lands at error level, with every error rendered into the message.
pub fn compile_select_analyzed(
    alphabet: &Alphabet,
    catalog: &Catalog,
    stmt: &Select,
    lints: &[(Code, LintLevel)],
) -> Result<CompiledSql, SqlError> {
    let mut compiled = compile_raw(alphabet, catalog, stmt)?;
    // Analyze against the calculus the query was inferred into, with the
    // same monoid cap `Query::infer` used, so star-freeness verdicts
    // agree between the two layers.
    let mut analyzer =
        Analyzer::new(compiled.query.calculus.structure_class()).monoid_cap(1_000_000);
    for (code, level) in lints {
        analyzer = analyzer.lint(*code, *level);
    }
    let analysis = analyzer.analyze(alphabet, &compiled.query.formula);
    if analysis.has_errors() {
        let errors: Vec<&strcalc_analyze::Diagnostic> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        let rendered: Vec<String> = errors.iter().map(|d| d.render()).collect();
        let mut err = SqlError::new(
            0,
            format!(
                "static analysis rejected the query:\n{}",
                rendered.join("\n")
            ),
        );
        if let Some(first) = errors.first() {
            err = err.with_code(first.code.as_str());
        }
        return Err(err);
    }
    compiled.analysis = Some(analysis);
    Ok(compiled)
}

/// Compiles a SELECT with the **verified-rewrite gate** in the loop: on
/// top of [`compile_select_analyzed`], the standard optimizer chain
/// (`nnf → lower_terms → simplify`) runs under translation validation,
/// and its `SA1xx` verdicts join the statement's diagnostics. A refuted
/// step (`SA100`, or `SA101` under [`LintLevel::Deny`]) fails the
/// compile with the counterexample witness in the message; otherwise the
/// certified rewritten formula replaces the compiled one (falling back
/// to the original when the gate could not certify the chain).
pub fn compile_select_verified(
    alphabet: &Alphabet,
    catalog: &Catalog,
    stmt: &Select,
    lints: &[(Code, LintLevel)],
) -> Result<CompiledSql, SqlError> {
    compile_select_verified_inner(alphabet, catalog, stmt, lints, Rewriter::standard(), None)
}

/// [`compile_select_verified`] with a shared compilation cache: the
/// gate's validator compiles each rewrite step's formulas through
/// `cache`, so re-compiling the same statement (or α-equivalent ones —
/// the key is the α-invariant formula fingerprint) skips every automaton
/// construction the cache already holds.
pub fn compile_select_verified_cached(
    alphabet: &Alphabet,
    catalog: &Catalog,
    stmt: &Select,
    lints: &[(Code, LintLevel)],
    cache: &Arc<AutomatonCache>,
) -> Result<CompiledSql, SqlError> {
    compile_select_verified_inner(
        alphabet,
        catalog,
        stmt,
        lints,
        Rewriter::standard(),
        Some(Arc::clone(cache)),
    )
}

/// [`compile_select_verified`] with an explicit rewrite chain — the
/// injection point for tests that certify the gate itself by feeding it
/// a deliberately broken step.
pub fn compile_select_verified_with(
    alphabet: &Alphabet,
    catalog: &Catalog,
    stmt: &Select,
    lints: &[(Code, LintLevel)],
    rewriter: Rewriter,
) -> Result<CompiledSql, SqlError> {
    compile_select_verified_inner(alphabet, catalog, stmt, lints, rewriter, None)
}

fn compile_select_verified_inner(
    alphabet: &Alphabet,
    catalog: &Catalog,
    stmt: &Select,
    lints: &[(Code, LintLevel)],
    rewriter: Rewriter,
    cache: Option<Arc<AutomatonCache>>,
) -> Result<CompiledSql, SqlError> {
    let mut compiled = compile_select_analyzed(alphabet, catalog, stmt, lints)?;
    let mut validator = Validator::new(alphabet.clone());
    if let Some(cache) = cache {
        validator = validator.with_cache(cache);
    }
    let mut gate = VerifiedRewriter::new(validator).with_rewriter(rewriter);
    for (code, level) in lints {
        gate = gate.lint(*code, *level);
    }
    let outcome = gate.rewrite(&compiled.query.formula);
    if outcome.rejected() {
        let errors: Vec<&strcalc_analyze::Diagnostic> = outcome
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        let rendered: Vec<String> = errors.iter().map(|d| d.render()).collect();
        let mut err = SqlError::new(
            0,
            format!(
                "translation validation rejected the rewrite:\n{}",
                rendered.join("\n")
            ),
        );
        if let Some(first) = errors.first() {
            err = err.with_code(first.code.as_str());
        }
        return Err(err);
    }
    if outcome.certified() {
        // Swap in the certified rewritten formula. Keep the original
        // when the rewrite changed the free variables (e.g. a head
        // column collapsed away) or no longer fits the calculus.
        if let Some(output) = outcome.output() {
            if output.free_vars() == compiled.query.formula.free_vars() {
                if let Ok(q) = Query::new(
                    compiled.query.calculus,
                    alphabet.clone(),
                    compiled.query.head.clone(),
                    output.clone(),
                ) {
                    compiled.query = q;
                }
            }
        }
    }
    if let Some(analysis) = &mut compiled.analysis {
        analysis.diagnostics.extend(outcome.diagnostics);
    }
    Ok(compiled)
}

/// The compilation itself, without analysis.
fn compile_raw(
    alphabet: &Alphabet,
    catalog: &Catalog,
    stmt: &Select,
) -> Result<CompiledSql, SqlError> {
    let mut ctx = Ctx {
        alphabet,
        catalog,
        counter: 0,
    };
    let scopes: Vec<Vec<ScopeEntry>> = Vec::new();
    let (body, head_defs) = compile_block(&mut ctx, stmt, &scopes, true)?;

    let head: Vec<String> = (0..head_defs.len()).map(|i| format!("col{i}")).collect();
    let mut formula = body;
    for (i, def) in head_defs.iter().enumerate() {
        formula = formula.and(Formula::eq(Term::var(head[i].clone()), def.clone()));
    }
    // ∃-close everything except the head columns.
    let mut bound: Vec<String> = formula
        .free_vars()
        .into_iter()
        .filter(|v| !head.contains(v))
        .collect();
    bound.reverse();
    for v in bound {
        formula = Formula::exists(v, formula);
    }

    let column_names: Vec<String> = stmt.columns.iter().map(render_term_name).collect();

    let query = Query::infer(alphabet.clone(), head, formula)
        .map_err(|e| SqlError::new(0, format!("compilation failed: {e}")))?;
    Ok(CompiledSql {
        query,
        column_names,
        analysis: None,
    })
}

/// Compiles one SELECT block's FROM/WHERE into a conjunction (free over
/// its own table-column variables and any correlated outer variables).
/// Returns the formula plus the lowered head terms (only when
/// `want_head`).
fn compile_block(
    ctx: &mut Ctx<'_>,
    stmt: &Select,
    outer: &[Vec<ScopeEntry>],
    want_head: bool,
) -> Result<(Formula, Vec<Term>), SqlError> {
    // Bind table occurrences.
    let mut local: Vec<ScopeEntry> = Vec::new();
    for tr in &stmt.from {
        if ctx.catalog.columns(&tr.table).is_none() {
            return Err(SqlError::new(0, format!("unknown table {}", tr.table)));
        }
        if local.iter().any(|e| e.alias == tr.alias) {
            return Err(SqlError::new(0, format!("duplicate alias {}", tr.alias)));
        }
        local.push(ScopeEntry {
            alias: tr.alias.clone(),
            table: tr.table.clone(),
            prefix: ctx.fresh_prefix(&tr.alias),
        });
    }
    let mut scopes = outer.to_vec();
    scopes.push(local.clone());

    // Relation atoms.
    let mut formula = Formula::and_all(local.iter().map(|e| {
        let cols = ctx.catalog.columns(&e.table).expect("checked");
        Formula::rel(
            e.table.clone(),
            cols.iter()
                .map(|c| Term::var(format!("{}__{}", e.prefix, c)))
                .collect(),
        )
    }));

    if let Some(cond) = &stmt.cond {
        formula = formula.and(compile_cond(ctx, cond, &scopes)?);
    }

    let head_defs = if want_head {
        stmt.columns
            .iter()
            .map(|t| compile_term(ctx, t, &scopes))
            .collect::<Result<Vec<_>, _>>()?
    } else {
        Vec::new()
    };
    Ok((formula, head_defs))
}

fn compile_cond(
    ctx: &mut Ctx<'_>,
    cond: &Cond,
    scopes: &[Vec<ScopeEntry>],
) -> Result<Formula, SqlError> {
    Ok(match cond {
        Cond::And(a, b) => compile_cond(ctx, a, scopes)?.and(compile_cond(ctx, b, scopes)?),
        Cond::Or(a, b) => compile_cond(ctx, a, scopes)?.or(compile_cond(ctx, b, scopes)?),
        Cond::Not(a) => compile_cond(ctx, a, scopes)?.not(),
        Cond::Like {
            term,
            pattern,
            negated,
        } => {
            let t = compile_term(ctx, term, scopes)?;
            let regex = like::compile_like(ctx.alphabet, pattern)
                .map_err(|e| SqlError::new(0, format!("bad LIKE pattern {pattern:?}: {e}")))?;
            let f = Formula::in_lang(t, Lang::named(format!("LIKE {pattern}"), regex));
            if *negated {
                f.not()
            } else {
                f
            }
        }
        Cond::Similar {
            term,
            pattern,
            negated,
        } => {
            let t = compile_term(ctx, term, scopes)?;
            let regex = compile_similar(ctx.alphabet, pattern)
                .map_err(|e| SqlError::new(0, format!("bad SIMILAR pattern {pattern:?}: {e}")))?;
            let f = Formula::in_lang(t, Lang::named(format!("SIMILAR {pattern}"), regex));
            if *negated {
                f.not()
            } else {
                f
            }
        }
        Cond::Eq(a, b) => Formula::eq(compile_term(ctx, a, scopes)?, compile_term(ctx, b, scopes)?),
        Cond::LexLt(a, b) => {
            let (ta, tb) = (compile_term(ctx, a, scopes)?, compile_term(ctx, b, scopes)?);
            Formula::lex_leq(ta.clone(), tb.clone()).and(Formula::eq(ta, tb).not())
        }
        Cond::LexLe(a, b) => {
            Formula::lex_leq(compile_term(ctx, a, scopes)?, compile_term(ctx, b, scopes)?)
        }
        Cond::Prefix(a, b) => {
            Formula::prefix(compile_term(ctx, a, scopes)?, compile_term(ctx, b, scopes)?)
        }
        Cond::LenCmp { left, right, op } => {
            let (ta, tb) = (
                compile_term(ctx, left, scopes)?,
                compile_term(ctx, right, scopes)?,
            );
            match op {
                LenOp::Eq => Formula::eq_len(ta, tb),
                LenOp::Lt => Formula::shorter(ta, tb),
                LenOp::Le => Formula::shorter_eq(ta, tb),
            }
        }
        Cond::Exists(sub) => {
            let (body, _) = compile_block(ctx, sub, scopes, false)?;
            close_subquery(body, scopes)
        }
        Cond::In { term, subquery } => {
            let t = compile_term(ctx, term, scopes)?;
            let (body, heads) = compile_block(ctx, subquery, scopes, true)?;
            if heads.len() != 1 {
                return Err(SqlError::new(
                    0,
                    "IN subquery must select exactly one column",
                ));
            }
            close_subquery(body.and(Formula::eq(t, heads[0].clone())), scopes)
        }
    })
}

/// Existentially closes a subquery body over its *own* variables (those
/// not visible in the enclosing scopes).
fn close_subquery(body: Formula, outer_scopes: &[Vec<ScopeEntry>]) -> Formula {
    let outer_prefixes: Vec<&str> = outer_scopes
        .iter()
        .flat_map(|s| s.iter().map(|e| e.prefix.as_str()))
        .collect();
    let is_outer = |v: &str| -> bool {
        outer_prefixes
            .iter()
            .any(|p| v.starts_with(p) && v[p.len()..].starts_with("__"))
    };
    let mut own: Vec<String> = body
        .free_vars()
        .into_iter()
        .filter(|v| !is_outer(v))
        .collect();
    own.reverse();
    let mut f = body;
    for v in own {
        f = Formula::exists(v, f);
    }
    f
}

fn compile_term(
    ctx: &mut Ctx<'_>,
    t: &SqlTerm,
    scopes: &[Vec<ScopeEntry>],
) -> Result<Term, SqlError> {
    Ok(match t {
        SqlTerm::Lit(s) => Term::konst(s.clone()),
        SqlTerm::TrimLeading(sym, inner) => compile_term(ctx, inner, scopes)?.trim_leading(*sym),
        SqlTerm::Col { qualifier, column } => {
            // Innermost scope first.
            for scope in scopes.iter().rev() {
                for entry in scope {
                    let alias_ok = match qualifier {
                        Some(q) => &entry.alias == q,
                        None => true,
                    };
                    if !alias_ok {
                        continue;
                    }
                    let cols = ctx.catalog.columns(&entry.table).expect("validated");
                    if cols.iter().any(|c| c == column) {
                        return Ok(Term::var(format!("{}__{}", entry.prefix, column)));
                    }
                    if qualifier.is_some() {
                        return Err(SqlError::new(
                            0,
                            format!("table {} has no column {column}", entry.table),
                        ));
                    }
                }
            }
            return Err(SqlError::new(
                0,
                format!(
                    "unresolved column {}{column}",
                    qualifier
                        .as_ref()
                        .map(|q| format!("{q}."))
                        .unwrap_or_default()
                ),
            ));
        }
    })
}

fn render_term_name(t: &SqlTerm) -> String {
    match t {
        SqlTerm::Col { qualifier, column } => match qualifier {
            Some(q) => format!("{q}.{column}"),
            None => column.clone(),
        },
        SqlTerm::Lit(_) => "literal".into(),
        SqlTerm::TrimLeading(_, inner) => format!("trim({})", render_term_name(inner)),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use strcalc_core::AutomataEngine;
    use strcalc_relational::Database;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table("faculty", &["name", "dept"]);
        c.add_table("dept", &["head"]);
        c
    }

    fn db() -> Database {
        let mut db = Database::new();
        let s = |t: &str| ab().parse(t).unwrap();
        db.insert("faculty", vec![s("ab"), s("b")]).unwrap();
        db.insert("faculty", vec![s("ba"), s("b")]).unwrap();
        db.insert("faculty", vec![s("abb"), s("a")]).unwrap();
        db.insert("dept", vec![s("ab")]).unwrap();
        db
    }

    fn run(sql: &str) -> (CompiledSql, Vec<Vec<strcalc_alphabet::Str>>) {
        let stmt = parse_select(&ab(), sql).unwrap();
        let compiled = compile_select(&ab(), &catalog(), &stmt).unwrap();
        let out = AutomataEngine::new()
            .eval(&compiled.query, &db())
            .unwrap()
            .expect_finite();
        let tuples: Vec<Vec<strcalc_alphabet::Str>> = out.iter().cloned().collect();
        (compiled, tuples)
    }

    #[test]
    fn like_query() {
        let (compiled, rows) = run("SELECT f.name FROM faculty f WHERE f.name LIKE 'a%'");
        assert_eq!(compiled.calculus(), Calculus::S);
        assert_eq!(rows.len(), 2); // ab, abb
    }

    #[test]
    fn similar_query_needs_sreg() {
        // Even length is regular but not star-free; (ab)* alone would be
        // star-free and stay in RC(S).
        let (compiled, rows) =
            run("SELECT f.name FROM faculty f WHERE f.name SIMILAR TO '((a|b)(a|b))*'");
        assert_eq!(compiled.calculus(), Calculus::SReg);
        assert_eq!(rows.len(), 2); // ab, ba

        let (compiled, rows) = run("SELECT f.name FROM faculty f WHERE f.name SIMILAR TO '(ab)*'");
        assert_eq!(compiled.calculus(), Calculus::S);
        assert_eq!(rows.len(), 1); // ab
    }

    #[test]
    fn length_needs_slen() {
        let (compiled, rows) =
            run("SELECT f.name FROM faculty f WHERE LENGTH(f.dept) < LENGTH(f.name)");
        assert_eq!(compiled.calculus(), Calculus::SLen);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn trim_needs_sleft() {
        let (compiled, rows) =
            run("SELECT f.name FROM faculty f WHERE TRIM(LEADING 'a' FROM f.name) = 'b'");
        assert_eq!(compiled.calculus(), Calculus::SLeft);
        assert_eq!(rows.len(), 1); // ab
    }

    #[test]
    fn exists_subquery_correlates() {
        let (compiled, rows) = run("SELECT f.name FROM faculty f WHERE EXISTS \
             (SELECT d.head FROM dept d WHERE d.head = f.name)");
        assert_eq!(compiled.calculus(), Calculus::S);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], ab().parse("ab").unwrap());
    }

    #[test]
    fn in_subquery() {
        let (_c, rows) = run("SELECT f.dept FROM faculty f WHERE f.name IN \
             (SELECT d.head FROM dept d)");
        assert_eq!(rows.len(), 1); // dept of 'ab' = 'b'
    }

    #[test]
    fn join_and_lex_order() {
        let (_c, rows) =
            run("SELECT f.name, g.name FROM faculty f, faculty g WHERE f.name < g.name");
        // pairs with f.name <lex g.name among {ab, ba, abb}: ab<abb,
        // ab<ba, abb<ba → 3.
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn projection_of_literals_and_trims() {
        let (_c, rows) =
            run("SELECT TRIM(LEADING 'a' FROM f.name) FROM faculty f WHERE f.name LIKE 'a%'");
        let s = |t: &str| ab().parse(t).unwrap();
        let flat: Vec<_> = rows.iter().map(|r| r[0].clone()).collect();
        assert!(flat.contains(&s("b")));
        assert!(flat.contains(&s("bb")));
    }

    #[test]
    fn analysis_rides_along_on_every_compile() {
        let (compiled, _) = run("SELECT f.name FROM faculty f WHERE f.name LIKE 'a%'");
        let analysis = compiled.analysis.expect("analysis attached");
        assert!(!analysis.has_errors());
        // SELECT-generated formulas are safe-range by construction:
        // every head column equals a relation-bound variable.
        assert!(analysis.safe_range.unrestricted_free.is_empty());
        assert!(analysis.cost.quantifier_rank >= 1);
    }

    #[test]
    fn deny_lint_fails_compilation() {
        use strcalc_analyze::{Code, LintLevel};
        let stmt = parse_select(
            &ab(),
            "SELECT f.name FROM faculty f, faculty g WHERE f.name < g.name",
        )
        .unwrap();
        // Denying the always-emitted SA030 cost report makes any
        // statement fatal — the bluntest demonstration that deny works.
        let err = compile_select_analyzed(
            &ab(),
            &catalog(),
            &stmt,
            &[(Code::CostReport, LintLevel::Deny)],
        )
        .unwrap_err();
        assert!(err.msg.contains("static analysis rejected"));
        assert!(err.msg.contains("SA030"));
    }

    #[test]
    fn allow_lint_drops_diagnostics() {
        use strcalc_analyze::{Code, LintLevel};
        let stmt = parse_select(&ab(), "SELECT f.name FROM faculty f").unwrap();
        let compiled = compile_select_analyzed(
            &ab(),
            &catalog(),
            &stmt,
            &[(Code::CostReport, LintLevel::Allow)],
        )
        .unwrap();
        assert!(compiled.warnings().is_empty());
        let analysis = compiled.analysis.expect("analysis attached");
        assert!(analysis.with_code(Code::CostReport).next().is_none());
    }

    #[test]
    fn verified_compile_attaches_sa1xx_and_preserves_results() {
        let stmt =
            parse_select(&ab(), "SELECT f.name FROM faculty f WHERE f.name LIKE 'a%'").unwrap();
        let compiled = compile_select_verified(&ab(), &catalog(), &stmt, &[]).unwrap();
        // The gate ran: SA1xx diagnostics are attached (identity steps
        // certify outright; database-dependent ones may stay SA101).
        let analysis = compiled.analysis.as_ref().expect("analysis attached");
        assert!(analysis.diagnostics.iter().any(|d| matches!(
            d.code,
            Code::RewriteValidated | Code::RewriteUnverified | Code::RewriteRefuted
        )));
        assert!(!analysis
            .diagnostics
            .iter()
            .any(|d| d.code == Code::RewriteRefuted));
        // And the (possibly rewritten) query still computes the same rows.
        let out = AutomataEngine::new()
            .eval(&compiled.query, &db())
            .unwrap()
            .expect_finite();
        assert_eq!(out.len(), 2); // ab, abb
    }

    #[test]
    fn verified_compile_rejects_a_broken_rewrite_with_sa100() {
        use strcalc_logic::Rewriter;
        let stmt =
            parse_select(&ab(), "SELECT f.name FROM faculty f WHERE f.name LIKE 'a%'").unwrap();
        // A "simplify" that deletes the WHERE clause entirely.
        let broken = Rewriter::new().step("simplify", |g: &Formula| match g {
            Formula::Exists(v, _) => Formula::exists(v.clone(), Formula::True),
            other => other.clone(),
        });
        let err = compile_select_verified_with(&ab(), &catalog(), &stmt, &[], broken).unwrap_err();
        assert!(
            err.msg.contains("translation validation rejected"),
            "{}",
            err.msg
        );
        assert!(err.msg.contains("SA100"), "{}", err.msg);
        assert!(err.msg.contains("simplify"), "{}", err.msg);
    }

    #[test]
    fn unverified_steps_can_be_denied() {
        use strcalc_logic::Rewriter;
        let stmt =
            parse_select(&ab(), "SELECT f.name FROM faculty f WHERE f.name LIKE 'a%'").unwrap();
        // A semantics-preserving but syntactically visible no-op: the
        // validator cannot certify it without a database (the formula
        // mentions `faculty`), so SA101 fires — denied, it is fatal.
        let noop = Rewriter::new().step("noop", |g: &Formula| g.clone().and(Formula::True));
        let err = compile_select_verified_with(
            &ab(),
            &catalog(),
            &stmt,
            &[(Code::RewriteUnverified, LintLevel::Deny)],
            noop,
        )
        .unwrap_err();
        assert!(err.msg.contains("SA101"), "{}", err.msg);
    }

    #[test]
    fn cached_verified_compile_hits_on_the_second_statement() {
        let cache = Arc::new(AutomatonCache::new());
        // The double negation makes `nnf` a real (non-identity) step, so
        // the gate actually compiles both sides against its generated
        // databases — the identity short-circuit never touches the cache.
        let stmt = parse_select(
            &ab(),
            "SELECT f.name FROM faculty f WHERE NOT NOT f.name LIKE 'a%'",
        )
        .unwrap();
        let first = compile_select_verified_cached(&ab(), &catalog(), &stmt, &[], &cache).unwrap();
        let after_first = cache.stats();
        assert!(after_first.misses > 0, "gate compiles populate the cache");
        let second = compile_select_verified_cached(&ab(), &catalog(), &stmt, &[], &cache).unwrap();
        let after_second = cache.stats();
        assert_eq!(
            after_second.misses, after_first.misses,
            "recompiling the same statement constructs no new automata"
        );
        assert!(after_second.hits > after_first.hits);
        // Identical output either way.
        assert_eq!(first.query.formula, second.query.formula);
        let out = AutomataEngine::new()
            .eval(&second.query, &db())
            .unwrap()
            .expect_finite();
        assert_eq!(out.len(), 2); // ab, abb
    }

    #[test]
    fn prepared_sql_statement_matches_direct_eval() {
        let stmt =
            parse_select(&ab(), "SELECT f.name FROM faculty f WHERE f.name LIKE 'a%'").unwrap();
        let compiled = compile_select(&ab(), &catalog(), &stmt).unwrap();
        let engine = AutomataEngine::new();
        let direct = engine.eval(&compiled.query, &db()).unwrap();
        let prepared = compiled.prepare(&engine);
        assert_eq!(prepared.eval(&db()).unwrap(), direct);
        assert_eq!(prepared.eval(&db()).unwrap(), direct);
        assert_eq!(prepared.compilations(), 1, "second eval reused the memo");
    }

    #[test]
    fn explain_renders_the_resource_certificate() {
        // Negation keeps the query out of the linear LIKE class, so it
        // takes the automata strategy and carries a non-zero certificate.
        let stmt = parse_select(
            &ab(),
            "SELECT f.name FROM faculty f WHERE NOT f.name LIKE 'a%'",
        )
        .unwrap();
        let compiled = compile_select(&ab(), &catalog(), &stmt).unwrap();
        let text = compiled.explain().unwrap();
        assert!(text.contains("strategy: automata"), "{text}");
        assert!(text.contains("certificate: states ≤"), "{text}");
        assert!(text.contains("verified"), "{text}");
        let json = compiled.explain_json().unwrap();
        assert!(json.contains("\"certificate\":{\"states\":["), "{json}");
    }

    #[test]
    fn linear_like_routes_to_the_scan_strategy() {
        // Fragment inference classifies the bare LIKE lookup as linear:
        // the plan streams the stored relation, builds no automaton (a
        // zero resource certificate), and agrees with the automata
        // engine on the output.
        let stmt =
            parse_select(&ab(), "SELECT f.name FROM faculty f WHERE f.name LIKE 'a%'").unwrap();
        let compiled = compile_select(&ab(), &catalog(), &stmt).unwrap();
        let plan = compiled.plan(&Planner::new()).unwrap();
        assert_eq!(plan.strategy.name(), "like-linear-scan");
        let text = compiled.explain().unwrap();
        assert!(text.contains("strategy: like-linear-scan"), "{text}");
        assert!(text.contains("fragment: like-linear"), "{text}");
        assert!(text.contains("LikeScan"), "{text}");
        assert!(!text.contains("certificate: states ≤"), "{text}");
        let (scanned, report) = plan.execute(&db()).unwrap();
        assert_eq!(report.automaton_states, 0, "the scan builds no automaton");
        let direct = AutomataEngine::new().eval(&compiled.query, &db()).unwrap();
        assert_eq!(scanned, direct);
    }

    #[test]
    fn planlint_report_is_clean_and_carries_sa210() {
        use strcalc_analyze::Code;
        // The certificate note is an automata-strategy artifact, so pin
        // a query the scan strategy does not claim.
        let stmt = parse_select(
            &ab(),
            "SELECT f.name FROM faculty f WHERE NOT f.name LIKE 'a%'",
        )
        .unwrap();
        let compiled = compile_select(&ab(), &catalog(), &stmt).unwrap();
        let report = compiled.planlint(&Planner::new()).unwrap();
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::PlanCertificate));
        assert!(report.certificate.is_some());
    }

    #[test]
    fn planlint_is_clean_on_the_scan_strategy() {
        let stmt =
            parse_select(&ab(), "SELECT f.name FROM faculty f WHERE f.name LIKE 'a%'").unwrap();
        let compiled = compile_select(&ab(), &catalog(), &stmt).unwrap();
        let report = compiled.planlint(&Planner::new()).unwrap();
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
    }

    #[test]
    fn analyzer_rejections_carry_their_code() {
        use strcalc_analyze::{Code, LintLevel};
        let stmt = parse_select(&ab(), "SELECT f.name FROM faculty f").unwrap();
        let err = compile_select_analyzed(
            &ab(),
            &catalog(),
            &stmt,
            &[(Code::CostReport, LintLevel::Deny)],
        )
        .unwrap_err();
        assert_eq!(err.code.as_deref(), Some("SA030"));
        assert!(err.to_string().contains("[SA030]"));
        // Parse errors stay code-less.
        let parse_err = parse_select(&ab(), "SELECT ?").unwrap_err();
        assert_eq!(parse_err.code, None);
    }

    #[test]
    fn unknown_names_error() {
        let stmt = parse_select(&ab(), "SELECT t.x FROM missing t").unwrap();
        assert!(compile_select(&ab(), &catalog(), &stmt).is_err());
        let stmt = parse_select(&ab(), "SELECT f.nope FROM faculty f").unwrap();
        assert!(compile_select(&ab(), &catalog(), &stmt).is_err());
    }
}
