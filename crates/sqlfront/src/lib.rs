//! A mini-SQL front-end for the string calculi.
//!
//! The paper's introduction motivates the whole enterprise with SQL:
//! `WHERE FACULTY.NAME LIKE 'ny%'` is a string query, but SQL restricts
//! how such predicates compose with relational operations. This crate
//! closes the loop: a small SQL dialect is parsed and **compiled into the
//! relational calculus**, where string predicates compose freely, the
//! minimal sufficient calculus is inferred ([`CompiledSql::calculus`]),
//! and evaluation is exact via the automata engine.
//!
//! ```sql
//! SELECT f.name FROM faculty f
//! WHERE f.name LIKE 'ab%'                 -- RC(S)
//!   AND f.name SIMILAR TO '(ab)*'         -- RC(S_reg)
//!   AND LENGTH(f.name) <= LENGTH(f.dept)  -- RC(S_len)
//!   AND TRIM(LEADING 'a' FROM f.name) = f.nick   -- RC(S_left)
//!   AND EXISTS (SELECT d.head FROM dept d WHERE d.head = f.name)
//! ```
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! select  ::= SELECT colref (',' colref)* FROM table (',' table)*
//!             (WHERE cond)?
//! table   ::= ident ident?                       -- name + optional alias
//! cond    ::= disjunctions/conjunctions/NOT/parens over predicates
//! pred    ::= term (NOT)? LIKE 'pattern'
//!           | term (NOT)? SIMILAR TO 'pattern'
//!           | term ('=' | '<' | '<=') term       -- <, <= lexicographic
//!           | PREFIX '(' term ',' term ')'       -- the ⪯ relation
//!           | LENGTH '(' term ')' ('=' | '<' | '<=') LENGTH '(' term ')'
//!           | EXISTS '(' select ')'
//!           | term IN '(' select ')'
//! term    ::= colref | 'literal' | TRIM '(' LEADING 'c' FROM term ')'
//! colref  ::= ident ('.' ident)?
//! ```

// Panic-audit round 8: the SQL front-end is user-facing — a malformed
// statement must surface as a typed `SqlError`, never a panic. Test
// modules opt back in locally.
#![deny(clippy::unwrap_used)]

mod compilepipe;
mod parser;

pub use compilepipe::{
    compile_select, compile_select_analyzed, compile_select_verified,
    compile_select_verified_cached, compile_select_verified_with, CompiledSql,
};
pub use parser::{parse_select, Catalog, Cond, Select, SqlError, SqlTerm, TableRef};

use strcalc_alphabet::Alphabet;
use strcalc_core::{Budget, CoreError, EvalOutput, ExecReport, Planner};
use strcalc_relational::Database;

/// End-to-end: parse, compile, plan, and evaluate a SELECT statement.
/// Evaluation is routed through the query [`Planner`], so the SQL
/// pipeline shares its strategy decision with every other entry point,
/// and runs under the plan's own seeded [`Budget`].
pub fn run_sql(
    alphabet: &Alphabet,
    catalog: &Catalog,
    db: &Database,
    sql: &str,
) -> Result<(CompiledSql, EvalOutput), SqlRunError> {
    let stmt = parse_select(alphabet, sql)?;
    let compiled = compile_select(alphabet, catalog, &stmt)?;
    let plan = compiled.plan(&Planner::new()).map_err(SqlRunError::Eval)?;
    let (out, _report) = plan.execute(db).map_err(SqlRunError::Eval)?;
    Ok((compiled, out))
}

/// [`run_sql`] under a caller-supplied resource [`Budget`] — the
/// multi-tenant entry point. The returned [`ExecReport`] carries the
/// execution verdict, any SA4xx degradation events, and the per-node
/// budget ledger; a caller that must not serve degraded answers passes
/// a budget with [`strcalc_core::DegradationPolicy::Fail`] and maps the
/// resulting `CoreError::BudgetExhausted` to its own admission error.
pub fn run_sql_governed(
    alphabet: &Alphabet,
    catalog: &Catalog,
    db: &Database,
    sql: &str,
    budget: &Budget,
) -> Result<(CompiledSql, EvalOutput, ExecReport), SqlRunError> {
    let stmt = parse_select(alphabet, sql)?;
    let compiled = compile_select(alphabet, catalog, &stmt)?;
    let plan = compiled.plan(&Planner::new()).map_err(SqlRunError::Eval)?;
    let (out, report) = plan.execute_with(db, budget).map_err(SqlRunError::Eval)?;
    Ok((compiled, out, report))
}

/// Errors from the full SQL pipeline.
#[derive(Debug)]
pub enum SqlRunError {
    Sql(SqlError),
    Eval(CoreError),
}

impl std::fmt::Display for SqlRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlRunError::Sql(e) => write!(f, "{e}"),
            SqlRunError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlRunError {}

impl From<SqlError> for SqlRunError {
    fn from(e: SqlError) -> Self {
        SqlRunError::Sql(e)
    }
}

impl From<CoreError> for SqlRunError {
    fn from(e: CoreError) -> Self {
        SqlRunError::Eval(e)
    }
}
