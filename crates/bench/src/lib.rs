//! Shared fixtures for the benchmark harness.
//!
//! Every bench target reproduces one artifact of the paper's evaluation
//! surface (the experiment index lives in `DESIGN.md` §4; measured
//! results in `EXPERIMENTS.md`):
//!
//! | bench | experiment | paper artifact |
//! |---|---|---|
//! | `fig1_separations` | E1 | Figure 1 (expressiveness lattice) |
//! | `fig2_matrix` | E2 | Figure 2 (property matrix) |
//! | `data_complexity` | E4 | Cor. 2: `RC(S)` polynomial data complexity |
//! | `unary_linear` | E5 | Prop. 3: linear time on unary databases |
//! | `slen_blowup` | E6 | Cor. 4: `RC(S_len)` exponential behaviour |
//! | `three_col` | E7 | Prop. 5: NP-complete query on width-1 DBs |
//! | `state_safety` | E10 | Prop. 7: decidable state-safety |
//! | `cq_safety` | E11 | Thm. 5: decidable CQ safety |
//! | `concat_blowup` | E3 | Prop. 1: `RC_concat` bounded-search cost |
//! | `engines_ablate` | §7 of DESIGN.md | ablations (trie, memo, minimize) |
//! | `like_compile` | E13 | Section 4: LIKE compilation |
//! | `sql_pipeline` | E14 | Section 1 motivation: SQL end-to-end |
//! | `algebra_vs_calculus` | E12 | Thm. 4/8: algebra = safe calculus |

use strcalc_alphabet::Alphabet;
use strcalc_core::{Calculus, Query};
use strcalc_relational::Database;
use strcalc_workloads::Workload;

/// The default bench alphabet `{a, b}`.
pub fn ab() -> Alphabet {
    Alphabet::ab()
}

/// A deterministic unary database of `n` strings.
pub fn unary_db(n: usize, max_len: usize, seed: u64) -> Database {
    Workload::new(ab(), seed).unary_db(n, max_len)
}

/// The standard `RC(S)` probe queries over a unary `U`.
pub fn s_query(head: &[&str], src: &str) -> Query {
    Query::parse(
        Calculus::S,
        ab(),
        head.iter().map(|h| h.to_string()).collect(),
        src,
    )
    .expect("bench query is valid")
}

/// As [`s_query`] for `RC(S_len)`.
pub fn slen_query(head: &[&str], src: &str) -> Query {
    Query::parse(
        Calculus::SLen,
        ab(),
        head.iter().map(|h| h.to_string()).collect(),
        src,
    )
    .expect("bench query is valid")
}

/// Merges one named section into the machine-readable bench report.
///
/// When the `BENCH_JSON` environment variable names a path, the
/// JSON-aware benches (`plan_overhead`, `prepare_amortization`) record
/// their headline numbers there as `{"<section>": <body>, ...}` — CI
/// sets `BENCH_JSON=BENCH_6.json` and archives the file. `body` must be
/// a valid JSON value. With the variable unset this is a no-op, so
/// plain `cargo bench` runs are unaffected. Re-running a bench against
/// an existing file appends a duplicate key; start from a fresh file
/// (as CI does) for a canonical report.
pub fn record_bench_json(section: &str, body: &str) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let existing = std::fs::read_to_string(&path).ok();
    let merged = match existing.as_deref().map(str::trim) {
        // The file is only ever written by this function, so the shape
        // is known: strip the closing brace and splice the section in.
        Some(prev) if prev.starts_with('{') && prev.ends_with('}') && prev.len() > 2 => {
            format!("{},\"{section}\":{body}}}", &prev[..prev.len() - 1])
        }
        _ => format!("{{\"{section}\":{body}}}"),
    };
    if let Err(e) = std::fs::write(&path, merged) {
        eprintln!("BENCH_JSON: cannot write {path}: {e}");
    }
}

/// Criterion settings tuned for algorithmic (not microsecond) benches.
pub fn criterion_config() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
        .configure_from_args()
}
