//! `experiments` — regenerates the paper-facing result tables printed in
//! `EXPERIMENTS.md`: the Figure-1 evidence table, the measured Figure-2
//! matrix, and the headline complexity sweeps (E3–E11).
//!
//! Run with `cargo run --release -p strcalc-bench --bin experiments`.

use std::time::Instant;

use strcalc_alphabet::Alphabet;
use strcalc_core::mso3col::{three_colorable_via_slen, Graph};
use strcalc_core::safety::state_safety;
use strcalc_core::separations::figure1_report;
use strcalc_core::{
    AutomataEngine, Calculus, ConcatEvaluator, ConjunctiveQuery, EnumEngine, Query,
};
use strcalc_logic::{Formula, Term};
use strcalc_relational::Database;
use strcalc_workloads::Workload;

fn ab() -> Alphabet {
    Alphabet::ab()
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    println!("# strcalc experiments — measured reproduction tables\n");
    figure1();
    figure2();
    e3_concat();
    e4_e5_scaling();
    e6_slen();
    e7_three_col();
    e10_state_safety();
    e11_cq_safety();
    println!("\n(done — paste into EXPERIMENTS.md)");
}

fn figure1() {
    println!("## E1 — Figure 1 separation evidence\n");
    println!("| edge | witness | holds |");
    println!("|---|---|---|");
    for row in figure1_report(&ab()).expect("report") {
        println!("| {} | {} | {} |", row.edge, row.witness, row.holds);
    }
    println!();
}

fn figure2() {
    println!("## E2 — Figure 2, measured\n");
    println!(
        "| calculus | exact eval (ms) | collapse baseline (ms) | state-safety (ms) | \
         engines agree |"
    );
    println!("|---|---|---|---|---|");
    let engine = AutomataEngine::new();
    let baseline = EnumEngine::with_slack(1);
    let db = Workload::new(ab(), 9).unary_db(24, 6);
    for calc in Calculus::all() {
        let src = match calc {
            Calculus::S => "exists y. (U(y) & x <= y & last(x,'a'))",
            Calculus::SLeft => "exists y. (U(y) & fa(y, x, 'a'))",
            Calculus::SReg => "exists y. (U(y) & pl(x, y, /(ab)*/))",
            Calculus::SLen => "exists y. (U(y) & el(x, y) & last(x,'a'))",
        };
        let q = Query::parse(calc, ab(), vec!["x".into()], src).unwrap();
        let t = Instant::now();
        let exact = engine.eval(&q, &db).unwrap().expect_finite();
        let t_exact = ms(t);
        let t = Instant::now();
        let approx = baseline.eval(&q, &db).unwrap();
        let t_base = ms(t);
        let t = Instant::now();
        let safe = state_safety(&engine, &q, &db).unwrap().is_safe();
        let t_safety = ms(t);
        println!(
            "| {} | {:.2} | {:.2} | {:.2} ({}) | {} |",
            calc.name(),
            t_exact,
            t_base,
            t_safety,
            if safe { "safe" } else { "unsafe" },
            exact == approx,
        );
    }
    println!();
}

fn e3_concat() {
    println!("## E3 — RC_concat bounded-search blow-up (Prop. 1)\n");
    println!("| bound B | |Σ^≤B| | ww answers | time (ms) |");
    println!("|---|---|---|---|");
    let db = Database::new();
    let ww = strcalc_core::concat::ww_query();
    for bound in [2usize, 4, 6, 8] {
        let eval = ConcatEvaluator::new(ab(), bound);
        let t = Instant::now();
        let n = eval.eval(&ww, &["x".to_string()], &db).unwrap().len();
        println!("| {bound} | {} | {n} | {:.2} |", eval.domain_size(), ms(t));
    }
    println!();
}

fn e4_e5_scaling() {
    println!("## E4/E5 — RC(S) data-complexity scaling (Cor. 2, Prop. 3)\n");
    println!("| n (unary tuples) | Boolean RC(S) eval (ms) | open query count (ms) |");
    println!("|---|---|---|");
    let engine = AutomataEngine::new();
    let qb = Query::parse(
        Calculus::S,
        ab(),
        vec![],
        "existsA x. existsA y. (U(x) & U(y) & x < y)",
    )
    .unwrap();
    let qo = Query::parse(
        Calculus::S,
        ab(),
        vec!["x".into()],
        "exists y. (U(y) & x <= y)",
    )
    .unwrap();
    for n in [50usize, 100, 200, 400, 800] {
        let db = Workload::new(ab(), 3 ^ n as u64).unary_db(n, 10);
        let t = Instant::now();
        let _ = engine.eval_bool(&qb, &db).unwrap();
        let t1 = ms(t);
        let t = Instant::now();
        let _ = engine.count(&qo, &db).unwrap();
        let t2 = ms(t);
        println!("| {n} | {t1:.2} | {t2:.2} |");
    }
    println!();
}

fn e6_slen() {
    println!("## E6 — RC(S_len) length blow-up (Thm. 2 / Cor. 4)\n");
    println!("| maxlen | automata (ms) | enum baseline (ms) |");
    println!("|---|---|---|");
    let engine = AutomataEngine::new();
    let baseline = EnumEngine::with_slack(0);
    let q = Query::parse(
        Calculus::SLen,
        ab(),
        vec![],
        "existsL z. (last(z, 'a') & existsA x. (U(x) & el(z, x) & !(z = x)))",
    )
    .unwrap();
    for max_len in [4usize, 6, 8, 10] {
        let db = Workload::new(ab(), 13).unary_db(12, max_len);
        let t = Instant::now();
        let _ = engine.eval_bool(&q, &db).unwrap();
        let t1 = ms(t);
        let t2 = if max_len <= 8 {
            let t = Instant::now();
            let _ = baseline.eval_bool(&q, &db).unwrap();
            format!("{:.2}", ms(t))
        } else {
            "—".to_string()
        };
        println!("| {max_len} | {t1:.2} | {t2} |");
    }
    println!();
}

fn e7_three_col() {
    println!("## E7 — 3-colorability via RC(S_len) on width-1 DBs (Prop. 5)\n");
    println!("| graph | 3-col? | S_len sentence (ms) | backtracking (µs) | agree |");
    println!("|---|---|---|---|---|");
    let engine = AutomataEngine::new();
    let graphs = [
        ("C3", Graph::cycle(3)),
        ("C4", Graph::cycle(4)),
        ("C5", Graph::cycle(5)),
        ("K3", Graph::complete(3)),
        ("K4", Graph::complete(4)),
    ];
    for (name, g) in graphs {
        let t = Instant::now();
        let via = three_colorable_via_slen(&engine, &ab(), &g).unwrap();
        let t1 = ms(t);
        let t = Instant::now();
        let direct = g.three_colorable();
        let t2 = t.elapsed().as_secs_f64() * 1e6;
        println!(
            "| {name} | {direct} | {t1:.1} | {t2:.1} | {} |",
            via == direct
        );
    }
    println!();
}

fn e10_state_safety() {
    println!("## E10 — state-safety decision latency (Prop. 7)\n");
    println!("| query | n=40 (ms) | n=160 (ms) | verdict |");
    println!("|---|---|---|---|");
    let engine = AutomataEngine::new();
    let cases = [
        ("prefixes (safe)", "exists y. (U(y) & x <= y)"),
        ("extensions (unsafe)", "exists y. (U(y) & y <= x)"),
        ("negation (unsafe)", "!U(x)"),
    ];
    for (name, src) in cases {
        let q = Query::parse(Calculus::S, ab(), vec!["x".into()], src).unwrap();
        let mut times = Vec::new();
        let mut verdict = true;
        for n in [40usize, 160] {
            let db = Workload::new(ab(), 5).unary_db(n, 8);
            let t = Instant::now();
            verdict = state_safety(&engine, &q, &db).unwrap().is_safe();
            times.push(ms(t));
        }
        println!(
            "| {name} | {:.2} | {:.2} | {} |",
            times[0],
            times[1],
            if verdict { "safe" } else { "unsafe" }
        );
    }
    println!();
}

fn e11_cq_safety() {
    println!("## E11 — conjunctive-query safety (Thm. 5 / Cor. 6)\n");
    println!("| CQ | verdict | time (ms) |");
    println!("|---|---|---|");
    let mk = |safe: bool| ConjunctiveQuery {
        calculus: Calculus::SLen,
        alphabet: ab(),
        head: vec!["x".into()],
        exists: vec!["y".into()],
        atoms: vec![("R".into(), vec![Term::var("y")])],
        constraint: if safe {
            Formula::prefix(Term::var("x"), Term::var("y"))
        } else {
            Formula::prefix(Term::var("y"), Term::var("x"))
        },
    };
    for (name, cq) in [("x ⪯ y (safe)", mk(true)), ("y ⪯ x (unsafe)", mk(false))] {
        let t = Instant::now();
        let v = cq.decide_safety().unwrap();
        println!(
            "| φ(x) :– R(y), {name} | {} | {:.2} |",
            if v.is_safe() {
                "safe"
            } else {
                "unsafe (witness DB built)"
            },
            ms(t)
        );
    }
    println!();
}
