//! E13 — Section 4: `LIKE` and `≤_lex` are expressible over `S`. We time
//! the LIKE compilation pipeline (parse → regex → minimal DFA) against
//! the direct dynamic-programming matcher, and lexicographic selection
//! through the calculus.

use criterion::{BenchmarkId, Criterion};
use strcalc_automata::{Dfa, LikePattern};
use strcalc_bench::{ab, s_query, unary_db};
use strcalc_core::AutomataEngine;
use strcalc_workloads::Workload;

fn bench(c: &mut Criterion) {
    let alphabet = ab();
    let mut wl = Workload::new(alphabet.clone(), 31);
    let patterns: Vec<String> = (0..8).map(|_| wl.random_like_pattern(8)).collect();
    let inputs: Vec<_> = (0..200).map(|_| wl.random_string(0, 24)).collect();

    let mut group = c.benchmark_group("like");
    group.bench_function("compile_to_min_dfa", |b| {
        b.iter(|| {
            patterns
                .iter()
                .map(|p| {
                    let pat = LikePattern::parse(&alphabet, p).unwrap();
                    Dfa::from_regex(2, &pat.to_regex()).len()
                })
                .sum::<usize>()
        })
    });
    group.bench_function("match_via_dfa", |b| {
        let dfas: Vec<Dfa> = patterns
            .iter()
            .map(|p| {
                let pat = LikePattern::parse(&alphabet, p).unwrap();
                Dfa::from_regex(2, &pat.to_regex())
            })
            .collect();
        b.iter(|| {
            dfas.iter()
                .map(|d| inputs.iter().filter(|w| d.accepts(w)).count())
                .sum::<usize>()
        })
    });
    group.bench_function("match_via_dp", |b| {
        let pats: Vec<LikePattern> = patterns
            .iter()
            .map(|p| LikePattern::parse(&alphabet, p).unwrap())
            .collect();
        b.iter(|| {
            pats.iter()
                .map(|p| inputs.iter().filter(|w| p.matches(w)).count())
                .sum::<usize>()
        })
    });
    group.finish();

    // ≤_lex selection through the full calculus (formula (2) of the
    // paper, here a native atom).
    let engine = AutomataEngine::new();
    let q = s_query(&["x", "y"], "U(x) & U(y) & lex(x, y) & !(x = y)");
    let mut group = c.benchmark_group("lex_select");
    for n in [20usize, 80] {
        let db = unary_db(n, 8, 33);
        group.bench_with_input(BenchmarkId::new("pairs", n), &db, |b, db| {
            b.iter(|| engine.count(&q, db).unwrap())
        });
    }
    group.finish();
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
