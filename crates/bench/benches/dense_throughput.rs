//! Dense batched DFA throughput: what densification buys at the
//! execution tier.
//!
//! PR 8 adds the dense tier — byte-class-compressed transition tables
//! run over whole columns in batches — as the executor for the general
//! scan class. The claim it must cash is raw filter throughput: the
//! premultiplied `u32` table walked via a 256-entry class map must beat
//! the sparse `Vec<Vec<Option<u32>>>` per-string DFA walk by a wide
//! margin on fig2-style corpora, measured in bytes/sec over the same
//! strings. Headline numbers (and the ≥3× gate) land in `BENCH_8.json`
//! via `BENCH_JSON`; CI archives it in the bench-json job.

use criterion::{BenchmarkId, Criterion, Throughput};
use strcalc_alphabet::Str;
use strcalc_automata::DenseDfa;
use strcalc_bench::ab;
use strcalc_core::{Calculus, Planner, Query, Strategy};
use strcalc_logic::Lang;
use strcalc_relational::Database;
use strcalc_workloads::Workload;

/// General-class fig2-style filters: none is LIKE-shaped, so each one
/// routes to the dense tier (the linear classes never reach it), and
/// none has a reachable dead state over Σ, so both engines must scan
/// every byte — these rows measure throughput and carry the ≥3× gate.
const PATTERNS: [(&str, &str); 3] = [
    ("segments", "b.*a.*"),
    ("parity", "(b*ab*a)*b*"),
    ("anchored", "a.*b.*a"),
];

/// A trap-heavy filter: `(aa)*` dies on the first `b`, so the sparse
/// walk exits after ~2 bytes per string. Reported (not gated) to show
/// the batched walker's whole-group trap exit keeps it competitive
/// when there is almost nothing to scan.
const TRAP: (&str, &str) = ("trap", "(aa)*");

/// Corpus shape: enough strings that the batch loop dominates, long
/// enough that the inner byte loop (the thing being measured) is the
/// hot path.
const CORPUS_N: usize = 4_000;
const MIN_LEN: usize = 16;
const MAX_LEN: usize = 128;
const SEED: u64 = 8;

fn lang(pattern: &str) -> Lang {
    let regex = strcalc_automata::Regex::parse(&ab(), pattern).expect("pattern parses");
    Lang::named(format!("LIKE {pattern}"), regex)
}

/// One timed round of `iters` runs of `f`.
fn timed(iters: u32, f: &mut impl FnMut()) -> std::time::Duration {
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed()
}

/// Fastest of `rounds` alternating dense/sparse rounds. Interleaving
/// keeps clock-frequency and cache drift from landing entirely on one
/// side of the comparison, and the minimum is the noise-free estimate
/// of each side's warm speed — scheduler noise only ever adds time.
fn paired_minimums(
    rounds: usize,
    iters: u32,
    mut dense: impl FnMut(),
    mut sparse: impl FnMut(),
) -> (std::time::Duration, std::time::Duration) {
    dense();
    sparse();
    let mut dt = std::time::Duration::MAX;
    let mut st = std::time::Duration::MAX;
    for _ in 0..rounds {
        dt = dt.min(timed(iters, &mut dense));
        st = st.min(timed(iters, &mut sparse));
    }
    (dt, st)
}

fn bench(c: &mut Criterion) {
    let mut w = Workload::new(ab(), SEED);
    let corpus: Vec<Str> = w.random_strings(CORPUS_N, MIN_LEN, MAX_LEN);
    let corpus_bytes: usize = corpus.iter().map(|s| s.syms().len()).sum();
    let refs: Vec<&Str> = corpus.iter().collect();

    let mut group = c.benchmark_group("dense_throughput");
    group.throughput(Throughput::Bytes(corpus_bytes as u64));
    for (name, pattern) in PATTERNS.into_iter().chain([TRAP]) {
        let sparse = lang(pattern).to_dfa(2);
        let dense = DenseDfa::compile(&sparse);
        group.bench_with_input(BenchmarkId::new("dense_batch", name), &dense, |b, d| {
            b.iter(|| {
                let mut mask = vec![true; refs.len()];
                d.match_mask(&refs, &mut mask);
                mask.iter().filter(|m| **m).count()
            })
        });
        group.bench_with_input(BenchmarkId::new("sparse_walk", name), &sparse, |b, d| {
            b.iter(|| corpus.iter().filter(|s| d.accepts(s)).count())
        });
    }
    group.finish();

    // Headline numbers: paired interleaved minimums.
    let rounds = 9usize;
    let iters = 20u32;
    let mut rows: Vec<String> = Vec::new();
    let mut trap_row = String::new();
    let mut trap_speedup = 0.0f64;
    let mut worst_speedup = f64::INFINITY;
    for (name, pattern) in PATTERNS.into_iter().chain([TRAP]) {
        let sparse = lang(pattern).to_dfa(2);
        let dense = DenseDfa::compile(&sparse);

        // Correctness gate before timing: the batched table and the
        // sparse walk agree on every corpus string, and the filter is
        // not degenerate (the `trap` row is the one legitimate
        // near-empty match set).
        let mut mask = vec![true; refs.len()];
        dense.match_mask(&refs, &mut mask);
        let matches = mask.iter().filter(|m| **m).count();
        for (m, s) in mask.iter().zip(&corpus) {
            assert_eq!(*m, sparse.accepts(s), "dense/sparse disagree on {s:?}");
        }
        assert!(matches < corpus.len(), "/{pattern}/ matched everything");

        // The executor reuses its batch mask across dispatches, so the
        // timed dense path does too.
        let mut mask_buf = vec![true; refs.len()];
        let (dense_t, sparse_t) = paired_minimums(
            rounds,
            iters,
            || {
                mask_buf.fill(true);
                dense.match_mask(&refs, &mut mask_buf);
            },
            || {
                corpus.iter().filter(|s| sparse.accepts(s)).count();
            },
        );
        let per_iter_bytes = corpus_bytes as f64;
        let dense_bps = per_iter_bytes * iters as f64 / dense_t.as_secs_f64().max(1e-12);
        let sparse_bps = per_iter_bytes * iters as f64 / sparse_t.as_secs_f64().max(1e-12);
        let speedup = sparse_t.as_secs_f64() / dense_t.as_secs_f64().max(1e-12);
        println!(
            "dense throughput {name:>9}: dense {:.1} MB/s vs sparse {:.1} MB/s — {speedup:.1}x \
             ({matches}/{} match)",
            dense_bps / 1e6,
            sparse_bps / 1e6,
            corpus.len(),
        );
        let row = format!(
            "{{\"pattern\":\"{pattern}\",\"dense_states\":{},\"dense_classes\":{},\
             \"table_bytes\":{},\"matches\":{matches},\"dense_round_secs\":{:.6},\
             \"sparse_round_secs\":{:.6},\"dense_bytes_per_sec\":{:.0},\
             \"sparse_bytes_per_sec\":{:.0},\"speedup\":{:.2}}}",
            dense.num_states(),
            dense.num_classes(),
            dense.approx_bytes(),
            dense_t.as_secs_f64(),
            sparse_t.as_secs_f64(),
            dense_bps,
            sparse_bps,
            speedup,
        );
        if name == TRAP.0 {
            trap_row = row;
            trap_speedup = speedup;
        } else {
            rows.push(format!("\"{name}\":{row}"));
            worst_speedup = worst_speedup.min(speedup);
        }
    }

    // End-to-end sanity on the same corpus: the planner routes the
    // general class to the dense tier and the answer matches forced
    // automaton evaluation (throughput is covered above; this pins the
    // executor wiring the numbers are claimed for).
    let mut db = Database::new();
    for s in &corpus {
        db.insert("U", vec![s.clone()]).expect("corpus row inserts");
    }
    let q = Query::parse(
        Calculus::SReg,
        ab(),
        vec!["x".into()],
        "U(x) & in(x, /b.*a.*/)",
    )
    .expect("probe query valid");
    let plan = Planner::new().plan(&q).expect("plans");
    assert_eq!(
        plan.strategy,
        Strategy::DenseDfaScan,
        "general class densifies"
    );
    let (routed, report) = plan.execute(&db).expect("dense route evaluates");
    let (direct, _) = Planner::new()
        .force(Strategy::Automata)
        .plan(&q)
        .expect("plans")
        .execute(&db)
        .expect("automata evaluates");
    assert_eq!(routed, direct, "dense route changed the answer");
    assert!(report.automaton_states > 0 && report.artifact_bytes > 0);

    strcalc_bench::record_bench_json(
        "dense_throughput",
        &format!(
            "{{\"corpus\":{{\"strings\":{CORPUS_N},\"bytes\":{corpus_bytes},\
             \"min_len\":{MIN_LEN},\"max_len\":{MAX_LEN},\"seed\":{SEED}}},\
             \"rounds\":{rounds},\"iters_per_round\":{iters},\
             \"per_pattern\":{{{}}},\"trap_pattern\":{},\"worst_speedup\":{:.2}}}",
            rows.join(","),
            trap_row,
            worst_speedup,
        ),
    );
    assert!(
        worst_speedup >= 3.0,
        "the batched dense table must beat the sparse per-string walk by ≥3x on \
         full-scan patterns, measured {worst_speedup:.2}x"
    );
    // The trap row has nothing to scan — the sparse walk rejects on the
    // first or second byte — so "throughput" degenerates to per-string
    // overhead. The whole-group trap exit must keep the batched walker
    // in the same league rather than 10× behind.
    assert!(
        trap_speedup >= 0.2,
        "batched trap exit fell behind the sparse early exit: {trap_speedup:.2}x"
    );
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
