//! Prepared-query amortization. Compiling a query to a synchronized
//! automaton dominates evaluation cost; a [`PreparedQuery`] pays it once
//! and reuses the minimized artifact on every later call. This bench
//! measures, on the Figure-2 probe queries, (a) a cold compile+eval per
//! iteration, (b) the second eval on a pre-warmed prepared handle, and
//! (c) a cached engine re-compiling the same statement — then prints the
//! amortization ratio so CI can archive it.

use std::sync::Arc;

use criterion::{BenchmarkId, Criterion};
use strcalc_bench::{ab, unary_db};
use strcalc_core::{AutomataEngine, AutomatonCache, Calculus, Query};

fn probe(calc: Calculus) -> Query {
    let src = match calc {
        Calculus::S => "exists y. (U(y) & x <= y & last(x,'a'))",
        Calculus::SLeft => "exists y. (U(y) & fa(y, x, 'a'))",
        Calculus::SReg => "exists y. (U(y) & pl(x, y, /(ab)*/))",
        Calculus::SLen => "exists y. (U(y) & el(x, y) & last(x,'a'))",
    };
    Query::parse(calc, ab(), vec!["x".into()], src).expect("probe query valid")
}

fn bench(c: &mut Criterion) {
    let db = unary_db(24, 6, 9);
    let mut group = c.benchmark_group("prepare_amortization");
    for calc in Calculus::all() {
        let q = probe(calc);

        // Cold: every iteration compiles from scratch and evaluates.
        let cold = AutomataEngine::new();
        group.bench_with_input(
            BenchmarkId::new("cold_compile_eval", calc.name()),
            &q,
            |b, q| b.iter(|| cold.eval(q, &db).unwrap()),
        );

        // Warm: the prepared handle already holds the minimized artifact;
        // iterations only pay enumeration.
        let prepared = AutomataEngine::new().prepare(q.clone());
        prepared.eval(&db).unwrap(); // warm-up compile, outside the timer
        group.bench_with_input(
            BenchmarkId::new("prepared_second_eval", calc.name()),
            &q,
            |b, _| b.iter(|| prepared.eval(&db).unwrap()),
        );
        assert_eq!(prepared.compilations(), 1, "warm evals must not recompile");

        // Cached engine: same statement re-submitted, served by the
        // automaton cache (hash lookup + fingerprints instead of compile).
        let cache = Arc::new(AutomatonCache::new());
        let cached = AutomataEngine::new().with_cache(Arc::clone(&cache));
        cached.eval(&q, &db).unwrap(); // populate
        group.bench_with_input(
            BenchmarkId::new("cached_resubmit_eval", calc.name()),
            &q,
            |b, q| b.iter(|| cached.eval(q, &db).unwrap()),
        );
        assert!(cache.stats().hit_rate() > 0.9, "resubmits must hit");
    }
    group.finish();

    // Headline number for the CI artifact: wall-clock amortization of one
    // prepared handle over N evals versus N cold compile+evals. These
    // probes carry an extra quantified track, so the cold path pays a
    // three-track convolution + projection per call while the warm path
    // only re-enumerates the minimized single-track artifact.
    let evals = 50u32;
    let mut json_rows: Vec<String> = Vec::new();
    for calc in Calculus::all() {
        let src = match calc {
            Calculus::S => "exists y. exists z. (U(y) & U(z) & x <= y & y <= z & last(x,'a'))",
            Calculus::SLeft => "exists y. exists z. (U(y) & U(z) & fa(y, x, 'a') & x <= z)",
            Calculus::SReg => "exists y. exists z. (U(y) & U(z) & pl(x, y, /(ab)*(ba)*/) & x <= z)",
            Calculus::SLen => {
                "exists y. exists z. (U(y) & U(z) & el(x, y) & el(y, z) & last(x,'a'))"
            }
        };
        let q = Query::parse(calc, ab(), vec!["x".into()], src).expect("headline probe valid");
        let cold_engine = AutomataEngine::new();
        let t0 = std::time::Instant::now();
        for _ in 0..evals {
            cold_engine.eval(&q, &db).unwrap();
        }
        let cold = t0.elapsed();

        let prepared = AutomataEngine::new().prepare(q);
        let t1 = std::time::Instant::now();
        for _ in 0..evals {
            prepared.eval(&db).unwrap();
        }
        let warm = t1.elapsed();
        let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
        println!(
            "amortization {:>5}: {} cold evals {:?} vs prepared {:?} — {:.1}x",
            calc.name(),
            evals,
            cold,
            warm,
            speedup,
        );
        json_rows.push(format!(
            "\"{}\":{{\"cold_secs\":{:.6},\"prepared_secs\":{:.6},\"speedup\":{:.2}}}",
            calc.name(),
            cold.as_secs_f64(),
            warm.as_secs_f64(),
            speedup,
        ));
    }
    strcalc_bench::record_bench_json(
        "prepare_amortization",
        &format!(
            "{{\"evals\":{evals},\"per_calculus\":{{{}}}}}",
            json_rows.join(","),
        ),
    );
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
