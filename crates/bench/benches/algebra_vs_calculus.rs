//! E12 — Theorems 4/8: the algebras capture the safe calculi. We time
//! both directions of the translation and compare evaluating the same
//! query as algebra vs as calculus.

use criterion::{BenchmarkId, Criterion};
use strcalc_bench::ab;
use strcalc_core::translate::{adom_calculus_to_algebra, gamma_candidates_expr, ra_to_calculus};
use strcalc_core::{AutomataEngine, Calculus, Query};
use strcalc_logic::Formula;
use strcalc_relational::{RaEvaluator, RaExpr};
use strcalc_workloads::Workload;

fn bench(c: &mut Criterion) {
    let alphabet = ab();
    let db = Workload::new(alphabet.clone(), 51).binary_db(40, 6);
    let schema = db.schema();

    // An algebra pipeline: prefixes of first components that are also
    // second components somewhere (semijoin flavour).
    let expr = RaExpr::rel("R")
        .project(vec![0])
        .prefix(0)
        .project(vec![1])
        .select(Formula::last_sym(RaExpr::col(0), 1));

    let ra_eval = RaEvaluator::new(alphabet.clone());
    let engine = AutomataEngine::new();

    let mut group = c.benchmark_group("algebra_vs_calculus");
    group.bench_function("ra_eval_direct", |b| {
        b.iter(|| ra_eval.eval(&expr, &db).unwrap().len())
    });
    group.bench_function("ra_to_calculus_translate", |b| {
        b.iter(|| ra_to_calculus(&expr, &schema).unwrap().size())
    });
    group.bench_function("translated_exact_eval", |b| {
        let f = ra_to_calculus(&expr, &schema).unwrap();
        let q = Query::infer(alphabet.clone(), vec!["c0".into()], f).unwrap();
        b.iter(|| engine.count(&q, &db).unwrap())
    });

    // Calculus → algebra on an active-domain query.
    let q = Query::parse(
        Calculus::S,
        alphabet.clone(),
        vec!["x".into()],
        "existsA y. (R(y, x) & lex(y, x))",
    )
    .unwrap();
    group.bench_function("calc_to_algebra_translate", |b| {
        b.iter(|| {
            adom_calculus_to_algebra(&q.formula, &q.head, &schema)
                .unwrap()
                .size()
        })
    });
    group.bench_function("calc_to_algebra_then_eval", |b| {
        let e = adom_calculus_to_algebra(&q.formula, &q.head, &schema).unwrap();
        b.iter(|| ra_eval.eval(&e, &db).unwrap().len())
    });

    // γ candidate expressions (the Theorem 4 bound machinery).
    for k in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("gamma_candidates", k), &k, |b, &k| {
            let e = gamma_candidates_expr(Calculus::S, &schema, 2, k).unwrap();
            b.iter(|| ra_eval.eval(&e, &db).unwrap().len())
        });
    }
    group.finish();
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
