//! E10 — Proposition 7: state-safety is decidable. We measure the cost
//! of the decision (compile + finiteness check) across calculi, database
//! sizes, and safe/unsafe queries.

use criterion::{BenchmarkId, Criterion};
use strcalc_bench::{s_query, slen_query, unary_db};
use strcalc_core::safety::state_safety;
use strcalc_core::AutomataEngine;

fn bench(c: &mut Criterion) {
    let engine = AutomataEngine::new();
    let cases = [
        (
            "safe_prefixes",
            s_query(&["x"], "exists y. (U(y) & x <= y)"),
        ),
        (
            "unsafe_extensions",
            s_query(&["x"], "exists y. (U(y) & y <= x)"),
        ),
        ("unsafe_negation", s_query(&["x"], "!U(x)")),
        ("safe_el", slen_query(&["x"], "exists y. (U(y) & el(x, y))")),
    ];
    let mut group = c.benchmark_group("state_safety");
    for n in [10usize, 40, 160] {
        let db = unary_db(n, 8, 5);
        for (name, q) in &cases {
            group.bench_with_input(BenchmarkId::new(*name, n), &db, |b, db| {
                b.iter(|| state_safety(&engine, q, db).unwrap().is_safe())
            });
        }
    }
    group.finish();
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
