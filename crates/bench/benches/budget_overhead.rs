//! Budget-governance overhead. Every `Plan::execute` now runs under an
//! explicit resource budget: a pre-execution governor walks the plan
//! tree handing each node its sub-budget, the run keeps a per-node
//! ledger, and a settlement pass charges the measured actuals. All of
//! that must be noise next to the work it governs, so this bench
//! measures, on the Figure-2 probe queries, (a) a direct ungoverned
//! compile+eval through the automata engine, and (b) the governed
//! `Plan::execute` on a pre-built plan, and gates the difference at 5%.

use criterion::{BenchmarkId, Criterion};
use strcalc_bench::{ab, unary_db};
use strcalc_core::{AutomataEngine, Calculus, Planner, Query};

fn probe(calc: Calculus) -> Query {
    let src = match calc {
        Calculus::S => "exists y. (U(y) & x <= y & last(x,'a'))",
        Calculus::SLeft => "exists y. (U(y) & fa(y, x, 'a'))",
        Calculus::SReg => "exists y. (U(y) & pl(x, y, /(ab)*/))",
        Calculus::SLen => "exists y. (U(y) & el(x, y) & last(x,'a'))",
    };
    Query::parse(calc, ab(), vec!["x".into()], src).expect("probe query valid")
}

fn bench(c: &mut Criterion) {
    let db = unary_db(24, 6, 9);
    let planner = Planner::new();
    let mut group = c.benchmark_group("budget_overhead");
    for calc in Calculus::all() {
        let q = probe(calc);
        let engine = AutomataEngine::new();
        let plan = planner.plan(&q).expect("probes always plan");

        // The ungoverned baseline: compile + eval, no budget machinery.
        group.bench_with_input(BenchmarkId::new("ungoverned", calc.name()), &q, |b, q| {
            b.iter(|| engine.eval(q, &db).expect("probes evaluate"))
        });

        // The governed run on a pre-built plan: governor pre-walk,
        // ledger, degradation dispatch, and settlement on top of the
        // same compile + eval.
        group.bench_with_input(
            BenchmarkId::new("governed", calc.name()),
            &plan,
            |b, plan| b.iter(|| plan.execute(&db).expect("probes evaluate")),
        );
    }
    group.finish();

    // Headline number for the CI artifact and gate: governed execution
    // time relative to the ungoverned compile+eval, per calculus. The
    // two sides alternate at *iteration* granularity and the gate takes
    // the median of the per-iteration ratio pairs — pairing at the
    // finest grain cancels machine drift (thermal, frequency scaling,
    // allocator warm-up, a noisy CI neighbour), which on this workload
    // dwarfs the machinery being measured, and the median discards the
    // page-fault outliers.
    let iters = 120usize;
    let mut worst = 0.0f64;
    let mut json_rows: Vec<String> = Vec::new();
    for calc in Calculus::all() {
        let q = probe(calc);
        let engine = AutomataEngine::new();
        let plan = planner.plan(&q).expect("probes always plan");

        let mut ratios = Vec::with_capacity(iters);
        let mut raw_total = 0.0f64;
        let mut gov_total = 0.0f64;
        for _ in 0..iters {
            let t0 = std::time::Instant::now();
            engine.eval(&q, &db).expect("probes evaluate");
            let raw = t0.elapsed().as_secs_f64();

            let t1 = std::time::Instant::now();
            plan.execute(&db).expect("probes evaluate");
            let gov = t1.elapsed().as_secs_f64();

            ratios.push(gov / raw.max(1e-12));
            raw_total += raw;
            gov_total += gov;
        }
        ratios.sort_by(|a, b| a.total_cmp(b));
        let pct = 100.0 * (ratios[iters / 2] - 1.0);
        worst = worst.max(pct);
        println!(
            "budget overhead {:>8}: governed {:.1}µs vs ungoverned {:.1}µs per run — {pct:+.2}%",
            calc.name(),
            1e6 * gov_total / iters as f64,
            1e6 * raw_total / iters as f64,
        );
        json_rows.push(format!(
            "\"{}\":{{\"governed_run_secs\":{:.7},\"ungoverned_run_secs\":{:.7},\"overhead_percent\":{:.3}}}",
            calc.name(),
            gov_total / iters as f64,
            raw_total / iters as f64,
            pct,
        ));
    }
    println!("budget overhead worst case: {worst:.2}% (budget 5%)");
    strcalc_bench::record_bench_json(
        "budget_overhead",
        &format!(
            "{{\"paired_iters\":{iters},\"budget_percent\":5.0,\"worst_percent\":{:.3},\"per_calculus\":{{{}}}}}",
            worst,
            json_rows.join(","),
        ),
    );
    assert!(
        worst < 5.0,
        "budget governance must stay under 5% of execution time, measured {worst:.2}%"
    );
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
