//! Fragment inference: what classification costs and what it buys.
//!
//! Since PR 7 the planner's strategy selection is a lookup on the
//! inferred fragment attribute (`analyze::fragments::eval_class`), so
//! (a) inference must be a small fraction of planning — the existing
//! 5% plan-overhead budget already includes it, this bench isolates
//! the share — and (b) the payoff must be real: a linear-class LIKE
//! query routed to the scan fast path must beat the same query forced
//! through automaton compilation. Headline numbers land in
//! `BENCH_7.json` via `BENCH_JSON` (CI archives it in the bench-json
//! job).

use criterion::{BenchmarkId, Criterion};
use strcalc_analyze::fragments;
use strcalc_bench::{ab, unary_db};
use strcalc_core::{Calculus, Planner, Query, Strategy};
use strcalc_relational::Database;

/// LIKE-shaped probes across the linear classes plus a general-class
/// control that stays on the automaton path.
const LIKE_PROBES: [(&str, &str); 4] = [
    ("prefix", "U(x) & in(x, /a.*/)"),
    ("suffix", "U(x) & in(x, /.*b/)"),
    ("infix", "U(x) & in(x, /.*ab.*/)"),
    ("general", "U(x) & in(x, /b.*a.*/)"),
];

fn probe(src: &str) -> Query {
    Query::parse(Calculus::SReg, ab(), vec!["x".into()], src).expect("probe query valid")
}

/// Median of `rounds` timed rounds of `iters` runs of `f`.
fn median_round(rounds: usize, iters: u32, mut f: impl FnMut()) -> std::time::Duration {
    let mut times = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        times.push(t0.elapsed());
    }
    times.sort();
    times[rounds / 2]
}

fn bench(c: &mut Criterion) {
    let db: Database = unary_db(240, 10, 9);
    let planner = Planner::new();

    let mut group = c.benchmark_group("fragment_inference");
    for (class, src) in LIKE_PROBES {
        let q = probe(src);
        // Classification alone: the attribute fixpoint over the AST.
        group.bench_with_input(BenchmarkId::new("eval_class", class), &q, |b, q| {
            b.iter(|| fragments::eval_class(&q.formula))
        });
        // The planning it now sits inside.
        group.bench_with_input(BenchmarkId::new("plan", class), &q, |b, q| {
            b.iter(|| planner.plan(q).expect("probes always plan"))
        });
        // Routed end to end: scan fast path for the linear classes,
        // automaton for the general class.
        group.bench_with_input(BenchmarkId::new("execute_routed", class), &q, |b, q| {
            b.iter(|| {
                planner
                    .plan(q)
                    .expect("probes always plan")
                    .execute(&db)
                    .expect("probes evaluate")
            })
        });
    }
    group.finish();

    // Headline numbers. Interleaved rounds, medians, same reasoning as
    // plan_overhead: machine drift hits both sides equally.
    let rounds = 5usize;
    let iters = 40u32;

    // (a) Inference share of planning, worst case over the probes.
    let mut worst_share = 0.0f64;
    let mut infer_rows: Vec<String> = Vec::new();
    for (class, src) in LIKE_PROBES {
        let q = probe(src);
        let infer = median_round(rounds, iters, || {
            fragments::eval_class(&q.formula);
        });
        let plan = median_round(rounds, iters, || {
            planner.plan(&q).expect("probes always plan");
        });
        let share = 100.0 * infer.as_secs_f64() / plan.as_secs_f64().max(1e-12);
        worst_share = worst_share.max(share);
        println!(
            "fragment inference {class:>8}: classify {infer:?} inside plan {plan:?} — {share:.2}%",
        );
        infer_rows.push(format!(
            "\"{class}\":{{\"eval_class_round_secs\":{:.6},\"plan_round_secs\":{:.6},\"share_percent\":{:.3}}}",
            infer.as_secs_f64(),
            plan.as_secs_f64(),
            share,
        ));
    }

    // (b) The fast path's payoff: the same linear-class query, routed
    // (scan, no automaton) vs forced through automaton compilation.
    let forced = Planner::new().force(Strategy::Automata);
    let mut speedup_rows: Vec<String> = Vec::new();
    let mut worst_speedup = f64::INFINITY;
    for (class, src) in LIKE_PROBES.iter().take(3) {
        let q = probe(src);
        let routed_plan = planner.plan(&q).expect("probes always plan");
        assert_eq!(routed_plan.strategy, Strategy::LikeLinearScan);
        let (scan_out, report) = routed_plan.execute(&db).expect("scan evaluates");
        assert_eq!(report.automaton_states, 0, "fast path built an automaton");
        let (auto_out, _) = forced
            .plan(&q)
            .expect("probes always plan")
            .execute(&db)
            .expect("automata evaluates");
        assert_eq!(scan_out, auto_out, "fast path changed the answer");

        let scan = median_round(rounds, iters, || {
            planner
                .plan(&q)
                .expect("plans")
                .execute(&db)
                .expect("evaluates");
        });
        let auto = median_round(rounds, iters, || {
            forced
                .plan(&q)
                .expect("plans")
                .execute(&db)
                .expect("evaluates");
        });
        let speedup = auto.as_secs_f64() / scan.as_secs_f64().max(1e-12);
        worst_speedup = worst_speedup.min(speedup);
        println!("like fast path {class:>8}: scan {scan:?} vs automata {auto:?} — {speedup:.1}x",);
        speedup_rows.push(format!(
            "\"{class}\":{{\"scan_round_secs\":{:.6},\"automata_round_secs\":{:.6},\"speedup\":{:.2}}}",
            scan.as_secs_f64(),
            auto.as_secs_f64(),
            speedup,
        ));
    }

    strcalc_bench::record_bench_json(
        "fragment_inference",
        &format!(
            "{{\"rounds\":{rounds},\"iters_per_round\":{iters},\"inference_worst_share_percent\":{:.3},\"per_class\":{{{}}},\"like_fast_path\":{{\"worst_speedup\":{:.2},\"per_class\":{{{}}}}}}}",
            worst_share,
            infer_rows.join(","),
            worst_speedup,
            speedup_rows.join(","),
        ),
    );
    assert!(
        worst_speedup > 1.0,
        "the linear-class scan must beat forced automaton compilation, measured {worst_speedup:.2}x"
    );
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
