//! E5 — Proposition 3: Boolean `RC(S)` queries on **unary** databases
//! evaluate in time linear in the database size. The sweep doubles `n`;
//! linearity shows as time roughly doubling.

use criterion::{BenchmarkId, Criterion, Throughput};
use strcalc_bench::{s_query, unary_db};
use strcalc_core::{AutomataEngine, EnumEngine};

fn bench(c: &mut Criterion) {
    let engine = AutomataEngine::new();
    let baseline = EnumEngine::with_slack(1);
    // A Boolean RC(S) query: "some stored string has a proper prefix also
    // stored" — prefix-structure heavy, exercised on the trie encoding.
    let q = s_query(&[], "existsA x. existsA y. (U(x) & U(y) & x < y)");
    let mut group = c.benchmark_group("unary_linear");
    for n in [50usize, 100, 200, 400, 800, 1600] {
        let db = unary_db(n, 12, 3);
        group.throughput(Throughput::Elements(db.total_tuples() as u64));
        group.bench_with_input(BenchmarkId::new("automata", n), &db, |b, db| {
            b.iter(|| engine.eval_bool(&q, db).unwrap())
        });
        if n <= 200 {
            group.bench_with_input(BenchmarkId::new("enum_baseline", n), &db, |b, db| {
                b.iter(|| baseline.eval_bool(&q, db).unwrap())
            });
        }
    }
    group.finish();
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
