//! E14 — translation-validation overhead. The verified-rewrite gate
//! certifies every step of `nnf → lower_terms → simplify` through the
//! automata path, which costs real compilations. This bench measures
//! that premium on the Figure-2 probe queries: plain compilation, the
//! unverified rewrite chain, and the full per-step certification
//! (`Validator::validate_trace_on`) side by side.

use criterion::{BenchmarkId, Criterion};
use strcalc_bench::{ab, unary_db};
use strcalc_core::{AutomataEngine, Calculus, Query};
use strcalc_logic::Rewriter;
use strcalc_verify::Validator;

fn probe(calc: Calculus) -> Query {
    let src = match calc {
        Calculus::S => "exists y. (U(y) & x <= y & last(x,'a'))",
        Calculus::SLeft => "exists y. (U(y) & fa(y, x, 'a'))",
        Calculus::SReg => "exists y. (U(y) & pl(x, y, /(ab)*/))",
        Calculus::SLen => "exists y. (U(y) & el(x, y) & last(x,'a'))",
    };
    Query::parse(calc, ab(), vec!["x".into()], src).expect("probe query valid")
}

fn bench(c: &mut Criterion) {
    let engine = AutomataEngine::new();
    let db = unary_db(24, 6, 9);
    let validator = Validator::new(ab());
    let rewriter = Rewriter::standard();
    let mut group = c.benchmark_group("verify_overhead");
    for calc in Calculus::all() {
        let q = probe(calc);
        group.bench_with_input(BenchmarkId::new("compile", calc.name()), &q, |b, q| {
            b.iter(|| engine.compile(q, &db).unwrap().var_names.len())
        });
        group.bench_with_input(BenchmarkId::new("rewrite", calc.name()), &q, |b, q| {
            b.iter(|| rewriter.rewrite_traced(&q.formula).steps.len())
        });
        group.bench_with_input(
            BenchmarkId::new("rewrite_and_validate", calc.name()),
            &q,
            |b, q| {
                b.iter(|| {
                    let trace = rewriter.rewrite_traced(&q.formula);
                    let steps = validator.validate_trace_on(&trace, &db);
                    assert!(steps.iter().all(|s| s.verdict.is_validated()));
                    steps.len()
                })
            },
        );
    }
    group.finish();
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
