//! E14 — the Section-1 motivation, end to end: SQL text → parse →
//! compile (with minimal-fragment inference) → exact evaluation.

use criterion::{BenchmarkId, Criterion};
use strcalc_bench::ab;
use strcalc_sqlfront::{compile_select, parse_select, run_sql, Catalog};
use strcalc_workloads::Workload;

fn bench(c: &mut Criterion) {
    let alphabet = ab();
    let mut catalog = Catalog::new();
    catalog.add_table("faculty", &["name", "dept"]);
    catalog.add_table("dept", &["head"]);

    // Data.
    let mut wl = Workload::new(alphabet.clone(), 41);
    let mut db = strcalc_relational::Database::new();
    for _ in 0..60 {
        let name = wl.random_string(1, 8);
        let dept = wl.random_string(1, 4);
        db.insert("faculty", vec![name, dept]).unwrap();
    }
    for _ in 0..8 {
        db.insert("dept", vec![wl.random_string(1, 8)]).unwrap();
    }

    let statements = [
        (
            "like",
            "SELECT f.name FROM faculty f WHERE f.name LIKE 'a%b'",
        ),
        (
            "similar",
            "SELECT f.name FROM faculty f WHERE f.name SIMILAR TO '(ab|ba)+'",
        ),
        (
            "subquery",
            "SELECT f.name FROM faculty f WHERE EXISTS \
             (SELECT d.head FROM dept d WHERE PREFIX(d.head, f.name))",
        ),
        (
            "length_join",
            "SELECT f.name, g.name FROM faculty f, faculty g \
             WHERE LENGTH(f.name) = LENGTH(g.name) AND f.name < g.name",
        ),
    ];

    let mut group = c.benchmark_group("sql_pipeline");
    for (name, sql) in &statements {
        group.bench_with_input(BenchmarkId::new("parse", name), sql, |b, sql| {
            b.iter(|| parse_select(&alphabet, sql).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("compile", name), sql, |b, sql| {
            let stmt = parse_select(&alphabet, sql).unwrap();
            b.iter(|| {
                compile_select(&alphabet, &catalog, &stmt)
                    .unwrap()
                    .calculus()
            })
        });
        group.bench_with_input(BenchmarkId::new("end_to_end", name), sql, |b, sql| {
            b.iter(|| {
                let (_c, out) = run_sql(&alphabet, &catalog, &db, sql).unwrap();
                out.is_finite()
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
