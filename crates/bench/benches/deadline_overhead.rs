//! In-flight deadline overhead. Every long-running execution loop now
//! polls a cooperative [`Deadline`] at coarse checkpoints (per
//! 4096-row dense batch, per enumeration-frontier candidate, per
//! search-depth level). An *unlimited* deadline's poll is one relaxed
//! atomic increment; an *armed* finite deadline additionally compares
//! against an injected fire point and reads the monotonic clock. Both
//! must be noise next to the work they interrupt, so this bench pairs,
//! at iteration granularity, a governed run under an unlimited wall
//! budget (unarmed deadline) against the same run under a finite but
//! never-expiring wall budget (armed deadline, clock reads at every
//! checkpoint), and gates the median overhead at 5% — on the Figure-2
//! probe queries and on a dense DFA scan, the checkpoint-densest path.
//!
//! [`Deadline`]: strcalc_core::Deadline

use criterion::{BenchmarkId, Criterion};
use strcalc_bench::{ab, unary_db};
use strcalc_core::{Budget, Calculus, ExecCx, Plan, Planner, Query};
use strcalc_relational::Database;

fn probe(calc: Calculus) -> Query {
    let src = match calc {
        Calculus::S => "exists y. (U(y) & x <= y & last(x,'a'))",
        Calculus::SLeft => "exists y. (U(y) & fa(y, x, 'a'))",
        Calculus::SReg => "exists y. (U(y) & pl(x, y, /(ab)*/))",
        Calculus::SLen => "exists y. (U(y) & el(x, y) & last(x,'a'))",
    };
    Query::parse(calc, ab(), vec!["x".into()], src).expect("probe query valid")
}

/// A dense-scan case large enough to cross several 4096-row checkpoint
/// batches — the hottest polling loop.
fn dense_case() -> (Plan, Database) {
    let db = unary_db(20_000, 12, 9);
    let q = Query::parse(
        Calculus::SReg,
        ab(),
        vec!["x".into()],
        "U(x) & in(x, /(aa)*/)",
    )
    .expect("dense probe valid");
    let plan = Planner::new().plan(&q).expect("dense probe plans");
    (plan, db)
}

/// A finite wall allowance no bench iteration can exhaust: the
/// deadline is armed (every checkpoint reads the clock) but never
/// fires, so both sides compute the identical exact answer.
fn armed() -> Budget {
    Budget {
        wall_time_ms: 3_600_000,
        ..Budget::unlimited()
    }
}

fn bench(c: &mut Criterion) {
    let db = unary_db(24, 6, 9);
    let planner = Planner::new();
    let mut cases: Vec<(String, Plan, Database)> = Calculus::all()
        .into_iter()
        .map(|calc| {
            let plan = planner.plan(&probe(calc)).expect("probes always plan");
            (calc.name().to_string(), plan, db.clone())
        })
        .collect();
    let (dense_plan, dense_db) = dense_case();
    cases.push(("dense_scan".to_string(), dense_plan, dense_db));

    let mut group = c.benchmark_group("deadline_overhead");
    for (name, plan, case_db) in &cases {
        group.bench_with_input(BenchmarkId::new("unarmed", name), plan, |b, plan| {
            b.iter(|| {
                plan.execute_with_ctx(case_db, &Budget::unlimited(), &ExecCx::production())
                    .expect("probes evaluate")
            })
        });
        group.bench_with_input(BenchmarkId::new("armed", name), plan, |b, plan| {
            b.iter(|| {
                plan.execute_with_ctx(case_db, &armed(), &ExecCx::production())
                    .expect("probes evaluate")
            })
        });
    }
    group.finish();

    // Headline number for the CI artifact and gate: armed-deadline
    // execution relative to the unarmed governed run. The two sides
    // alternate at iteration granularity and the gate takes the median
    // per-iteration ratio — pairing cancels machine drift, the median
    // discards page-fault outliers (same method as `budget_overhead`).
    let iters = 120usize;
    let mut worst = 0.0f64;
    let mut json_rows: Vec<String> = Vec::new();
    for (name, plan, case_db) in &cases {
        let mut ratios = Vec::with_capacity(iters);
        let mut base_total = 0.0f64;
        let mut armed_total = 0.0f64;
        for _ in 0..iters {
            let t0 = std::time::Instant::now();
            let (out0, r0) = plan
                .execute_with_ctx(case_db, &Budget::unlimited(), &ExecCx::production())
                .expect("probes evaluate");
            let base = t0.elapsed().as_secs_f64();

            let t1 = std::time::Instant::now();
            let (out1, r1) = plan
                .execute_with_ctx(case_db, &armed(), &ExecCx::production())
                .expect("probes evaluate");
            let timed = t1.elapsed().as_secs_f64();

            assert_eq!(out0, out1, "an unfired deadline never changes the answer");
            assert!(r0.verdict.is_exact() && r1.verdict.is_exact());
            ratios.push(timed / base.max(1e-12));
            base_total += base;
            armed_total += timed;
        }
        ratios.sort_by(|a, b| a.total_cmp(b));
        let pct = 100.0 * (ratios[iters / 2] - 1.0);
        worst = worst.max(pct);
        println!(
            "deadline overhead {name:>10}: armed {:.1}µs vs unarmed {:.1}µs per run — {pct:+.2}%",
            1e6 * armed_total / iters as f64,
            1e6 * base_total / iters as f64,
        );
        json_rows.push(format!(
            "\"{name}\":{{\"armed_run_secs\":{:.7},\"unarmed_run_secs\":{:.7},\"overhead_percent\":{:.3}}}",
            armed_total / iters as f64,
            base_total / iters as f64,
            pct,
        ));
    }
    println!("deadline overhead worst case: {worst:.2}% (budget 5%)");
    strcalc_bench::record_bench_json(
        "deadline_overhead",
        &format!(
            "{{\"paired_iters\":{iters},\"budget_percent\":5.0,\"worst_percent\":{:.3},\"per_case\":{{{}}}}}",
            worst,
            json_rows.join(","),
        ),
    );
    assert!(
        worst < 5.0,
        "deadline checkpoints must stay under 5% of execution time, measured {worst:.2}%"
    );
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
