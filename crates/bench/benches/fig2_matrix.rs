//! E2 — Figure 2: the property matrix, measured. For each calculus we
//! time (a) exact evaluation, (b) the collapse-based baseline, and
//! (c) the state-safety decision, on the same database — the per-column
//! cost profile that Figure 2 summarizes qualitatively.

use criterion::{BenchmarkId, Criterion};
use strcalc_bench::{ab, unary_db};
use strcalc_core::safety::state_safety;
use strcalc_core::{AutomataEngine, Calculus, EnumEngine, Query};

fn probe(calc: Calculus) -> Query {
    let src = match calc {
        Calculus::S => "exists y. (U(y) & x <= y & last(x,'a'))",
        Calculus::SLeft => "exists y. (U(y) & fa(y, x, 'a'))",
        Calculus::SReg => "exists y. (U(y) & pl(x, y, /(ab)*/))",
        Calculus::SLen => "exists y. (U(y) & el(x, y) & last(x,'a'))",
    };
    Query::parse(calc, ab(), vec!["x".into()], src).expect("probe query valid")
}

fn bench(c: &mut Criterion) {
    let engine = AutomataEngine::new();
    let baseline = EnumEngine::with_slack(1);
    let db = unary_db(24, 6, 9);
    let mut group = c.benchmark_group("fig2_matrix");
    for calc in Calculus::all() {
        let q = probe(calc);
        group.bench_with_input(BenchmarkId::new("exact_eval", calc.name()), &q, |b, q| {
            b.iter(|| engine.eval(q, &db).unwrap().is_finite())
        });
        group.bench_with_input(
            BenchmarkId::new("collapse_baseline", calc.name()),
            &q,
            |b, q| b.iter(|| baseline.eval(q, &db).unwrap().len()),
        );
        group.bench_with_input(BenchmarkId::new("state_safety", calc.name()), &q, |b, q| {
            b.iter(|| state_safety(&engine, q, &db).unwrap().is_safe())
        });
    }
    group.finish();
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
