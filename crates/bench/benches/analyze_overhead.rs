//! E13 — static-analysis overhead. The analyzer is meant to run on
//! *every* compile ([`strcalc_sqlfront::compile_select_analyzed`] and
//! `Query::analyzed`), which is only tenable if its latency is
//! negligible next to compilation proper. This bench puts the full
//! four-pass analysis beside automata compilation and end-to-end
//! evaluation on the Figure-2 probe queries.

use criterion::{BenchmarkId, Criterion};
use strcalc_analyze::Analyzer;
use strcalc_bench::{ab, unary_db};
use strcalc_core::{AutomataEngine, Calculus, Query};

fn probe(calc: Calculus) -> Query {
    let src = match calc {
        Calculus::S => "exists y. (U(y) & x <= y & last(x,'a'))",
        Calculus::SLeft => "exists y. (U(y) & fa(y, x, 'a'))",
        Calculus::SReg => "exists y. (U(y) & pl(x, y, /(ab)*/))",
        Calculus::SLen => "exists y. (U(y) & el(x, y) & last(x,'a'))",
    };
    Query::parse(calc, ab(), vec!["x".into()], src).expect("probe query valid")
}

fn bench(c: &mut Criterion) {
    let engine = AutomataEngine::new();
    let db = unary_db(24, 6, 9);
    let mut group = c.benchmark_group("analyze_overhead");
    for calc in Calculus::all() {
        let q = probe(calc);
        let analyzer = Analyzer::new(calc.structure_class()).monoid_cap(1_000_000);
        group.bench_with_input(BenchmarkId::new("analyze", calc.name()), &q, |b, q| {
            b.iter(|| {
                let analysis = analyzer.analyze(&q.alphabet, &q.formula);
                assert!(!analysis.has_errors());
                analysis.diagnostics.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("compile", calc.name()), &q, |b, q| {
            b.iter(|| engine.compile(q, &db).unwrap().var_names.len())
        });
        group.bench_with_input(
            BenchmarkId::new("compile_and_eval", calc.name()),
            &q,
            |b, q| b.iter(|| engine.eval(q, &db).unwrap().is_finite()),
        );
    }
    group.finish();
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
