//! E4 — Corollary 2: `RC(S)` has AC⁰ (in particular polynomial) data
//! complexity. We chart evaluation time of fixed `RC(S)` queries as the
//! database grows; the log–log slope should stay a small constant.

use criterion::{BenchmarkId, Criterion};
use strcalc_bench::{ab, s_query, unary_db};
use strcalc_core::AutomataEngine;
use strcalc_workloads::Workload;

fn bench(c: &mut Criterion) {
    let engine = AutomataEngine::new();
    let queries = [
        ("ends_in_b", s_query(&["x"], "U(x) & last(x,'b')")),
        ("prefix_pairs", s_query(&["x", "y"], "U(x) & U(y) & x < y")),
        (
            "boolean_common_prefix",
            s_query(
                &[],
                "exists p. existsA x. existsA y. \
                 (U(x) & U(y) & !(x = y) & p <= x & p <= y & last(p,'a'))",
            ),
        ),
    ];
    let mut group = c.benchmark_group("data_complexity_s");
    for n in [20usize, 40, 80, 160, 320] {
        let db = unary_db(n, 10, 7);
        for (name, q) in &queries {
            group.bench_with_input(BenchmarkId::new(*name, n), &db, |b, db| {
                b.iter(|| {
                    if q.is_boolean() {
                        let _ = engine.eval_bool(q, db).unwrap();
                    } else {
                        let _ = engine.count(q, db).unwrap();
                    }
                })
            });
        }
    }
    group.finish();

    // Binary-relation variant (joins).
    let mut group = c.benchmark_group("data_complexity_s_binary");
    let q = s_query(&[], "existsA x. existsA y. (R(x, y) & x <= y)");
    for n in [20usize, 40, 80, 160] {
        let db = Workload::new(ab(), 11).binary_db(n, 8);
        group.bench_with_input(BenchmarkId::new("prefix_join", n), &db, |b, db| {
            b.iter(|| engine.eval_bool(&q, db).unwrap())
        });
    }
    group.finish();
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
