//! E1 — Figure 1: the expressiveness lattice. We time the machine-checked
//! evidence for each edge (star-freeness/aperiodicity tests, definable-set
//! extraction) and the full report.

use criterion::Criterion;
use strcalc_automata::starfree::is_star_free;
use strcalc_automata::{Dfa, Regex};
use strcalc_bench::ab;
use strcalc_core::separations::{
    check_s_definable_star_free, definable_set, figure1_report, s_formula_corpus,
};

fn bench(c: &mut Criterion) {
    let alphabet = ab();
    let corpus = s_formula_corpus(&alphabet);

    c.bench_function("fig1/aperiodicity_aa_star", |b| {
        let d = Dfa::from_regex(2, &Regex::parse(&alphabet, "(aa)*").unwrap());
        b.iter(|| is_star_free(&d, 1_000_000).unwrap())
    });
    c.bench_function("fig1/definable_set_extraction", |b| {
        b.iter(|| definable_set(&alphabet, &corpus[2]).unwrap().len())
    });
    c.bench_function("fig1/star_free_invariant_corpus", |b| {
        b.iter(|| {
            check_s_definable_star_free(&alphabet, &corpus, 1_000_000)
                .unwrap()
                .is_none()
        })
    });
    c.bench_function("fig1/full_report", |b| {
        b.iter(|| figure1_report(&alphabet).unwrap().len())
    });
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
