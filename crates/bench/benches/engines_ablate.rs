//! Ablations called out in DESIGN.md §7:
//!
//! * trie encoding of database relations vs a naive per-tuple union;
//! * aggressive vs lazy minimization thresholds in the compiler;
//! * product order (smallest-first is built in; we chart threshold
//!   effects instead);
//! * enumeration-engine memoization on/off.

use criterion::{BenchmarkId, Criterion};
use strcalc_alphabet::Str;
use strcalc_bench::{ab, s_query};
use strcalc_core::{AutomataEngine, EnumEngine};
use strcalc_synchro::{atoms, SyncNfa};
use strcalc_workloads::Workload;

/// Naive finite-relation automaton: union of one-path automata per
/// tuple (the thing the trie encoding improves on).
fn finite_relation_naive(k: u8, words: &[Str]) -> SyncNfa {
    let mut acc = SyncNfa::empty(k, vec![0]);
    let start = acc.add_state(false);
    acc.starts = vec![start];
    for w in words {
        acc = acc.union(&atoms::const_eq(k, 0, w)).expect("same alphabet");
    }
    acc
}

fn bench(c: &mut Criterion) {
    // --- trie vs naive encoding ---
    let mut group = c.benchmark_group("ablate_trie");
    for n in [50usize, 200, 800] {
        let words: Vec<Str> = {
            let mut wl = Workload::new(ab(), 21);
            let db = wl.trie_db(n, 3, 6);
            db.adom().into_iter().collect()
        };
        group.bench_with_input(BenchmarkId::new("trie", n), &words, |b, words| {
            b.iter(|| atoms::finite_set(2, 0, words.iter()).num_states())
        });
        group.bench_with_input(BenchmarkId::new("naive_union", n), &words, |b, words| {
            b.iter(|| finite_relation_naive(2, words).num_states())
        });
        // Downstream effect: determinize+minimize each.
        group.bench_with_input(
            BenchmarkId::new("trie_then_minimize", n),
            &words,
            |b, words| {
                b.iter(|| {
                    atoms::finite_set(2, 0, words.iter())
                        .minimize()
                        .num_states()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive_then_minimize", n),
            &words,
            |b, words| b.iter(|| finite_relation_naive(2, words).minimize().num_states()),
        );
    }
    group.finish();

    // --- minimization threshold ---
    let mut group = c.benchmark_group("ablate_minimize");
    let db = Workload::new(ab(), 23).unary_db(60, 8);
    let q = s_query(
        &[],
        "forallA x. (U(x) -> exists y. (y <= x & last(y, 'b')))",
    );
    for threshold in [8usize, 64, 4096] {
        let engine = AutomataEngine {
            minimize_threshold: threshold,
            ..AutomataEngine::new()
        };
        group.bench_with_input(
            BenchmarkId::new("threshold", threshold),
            &engine,
            |b, engine| b.iter(|| engine.eval_bool(&q, &db).unwrap()),
        );
    }
    group.finish();

    // --- enumeration-engine memoization ---
    let mut group = c.benchmark_group("ablate_memo");
    let db = Workload::new(ab(), 25).unary_db(20, 5);
    let q = s_query(
        &[],
        "forallA x. (U(x) -> existsA y. (U(y) & (x <= y | y <= x)))",
    );
    for memo in [true, false] {
        let engine = EnumEngine {
            memoize: memo,
            slack: Some(1),
        };
        group.bench_with_input(BenchmarkId::new("memoize", memo), &engine, |b, engine| {
            b.iter(|| engine.eval_bool(&q, &db).unwrap())
        });
    }
    group.finish();
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
