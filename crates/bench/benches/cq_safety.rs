//! E11 — Theorem 5 / Corollary 6: safety of conjunctive queries is
//! decidable. We time the `∃^∞`-based decision on families of safe and
//! unsafe CQs of growing constraint complexity.

use criterion::{BenchmarkId, Criterion};
use strcalc_bench::ab;
use strcalc_core::{Calculus, ConjunctiveQuery};
use strcalc_logic::{Formula, Term};

fn chain_cq(len: usize, safe: bool) -> ConjunctiveQuery {
    // φ(x) :– R(y₀), y₀ ⪯ y₁ ⪯ … ⪯ y_len, and then either x ⪯ y_len
    // (safe) or y_len ⪯ x (unsafe).
    let mut constraint = Formula::True;
    for i in 0..len {
        constraint = constraint.and(Formula::prefix(
            Term::var(format!("y{i}")),
            Term::var(format!("y{}", i + 1)),
        ));
    }
    let last = Term::var(format!("y{len}"));
    constraint = constraint.and(if safe {
        Formula::prefix(Term::var("x"), last)
    } else {
        Formula::prefix(last, Term::var("x"))
    });
    ConjunctiveQuery {
        calculus: Calculus::SLen,
        alphabet: ab(),
        head: vec!["x".into()],
        exists: (0..=len).map(|i| format!("y{i}")).collect(),
        atoms: vec![("R".into(), vec![Term::var("y0")])],
        constraint,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cq_safety");
    for len in [1usize, 2, 3, 4] {
        for safe in [true, false] {
            let cq = chain_cq(len, safe);
            let label = if safe { "safe_chain" } else { "unsafe_chain" };
            group.bench_with_input(BenchmarkId::new(label, len), &cq, |b, cq| {
                b.iter(|| cq.decide_safety().unwrap().is_safe())
            });
        }
    }
    group.finish();
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
