//! E7 — Proposition 5: 3-colorability (NP-complete, MSO) decided by a
//! fixed `RC(S_len)` sentence on width-1 string databases, charted
//! against a direct backtracking solver. The string-logic route is
//! exponential in the graph size — as an NP-complete query evaluated by
//! a generic procedure must be — while backtracking on these tiny
//! instances is microseconds; the *shape* (who wins, and how fast the
//! gap opens) is the reproduced result.

use criterion::{BenchmarkId, Criterion};
use strcalc_bench::ab;
use strcalc_core::mso3col::{three_colorable_via_slen, Graph};
use strcalc_core::AutomataEngine;

fn bench(c: &mut Criterion) {
    let engine = AutomataEngine::new();
    let mut group = c.benchmark_group("three_col");
    for n in [3usize, 4, 5] {
        // K5's S_len evaluation is minutes-scale (it is an NP-complete
        // query run through a generic decision procedure); cap cliques
        // at 4 and let cycles carry the n = 5 point.
        let graphs: Vec<(&str, Graph)> = if n <= 4 {
            vec![("cycle", Graph::cycle(n)), ("complete", Graph::complete(n))]
        } else {
            vec![("cycle", Graph::cycle(n))]
        };
        for (name, g) in graphs {
            group.bench_with_input(BenchmarkId::new(format!("slen_{name}"), n), &g, |b, g| {
                b.iter(|| three_colorable_via_slen(&engine, &ab(), g).unwrap())
            });
            group.bench_with_input(
                BenchmarkId::new(format!("backtracking_{name}"), n),
                &g,
                |b, g| b.iter(|| g.three_colorable()),
            );
        }
    }
    group.finish();
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
