//! Planning overhead. Every entry point now routes evaluation through
//! the query planner (strategy decision, four passes, operator-tree
//! lowering, cost annotation), so planning must be cheap relative to
//! what it fronts. This bench measures, on the Figure-2 probe queries,
//! (a) planning alone, (b) a full compile+eval, and prints the headline
//! ratio — planning is required to stay under 5% of compile time — so
//! CI can archive and gate it.

use criterion::{BenchmarkId, Criterion};
use strcalc_bench::{ab, unary_db};
use strcalc_core::{AutomataEngine, Calculus, Planner, Query};

fn probe(calc: Calculus) -> Query {
    let src = match calc {
        Calculus::S => "exists y. (U(y) & x <= y & last(x,'a'))",
        Calculus::SLeft => "exists y. (U(y) & fa(y, x, 'a'))",
        Calculus::SReg => "exists y. (U(y) & pl(x, y, /(ab)*/))",
        Calculus::SLen => "exists y. (U(y) & el(x, y) & last(x,'a'))",
    };
    Query::parse(calc, ab(), vec!["x".into()], src).expect("probe query valid")
}

fn bench(c: &mut Criterion) {
    let db = unary_db(24, 6, 9);
    let planner = Planner::new();
    let mut group = c.benchmark_group("plan_overhead");
    for calc in Calculus::all() {
        let q = probe(calc);

        // Planning alone: strategy decision + passes + lowering + EXPLAIN
        // metadata, no automata work.
        group.bench_with_input(BenchmarkId::new("plan_only", calc.name()), &q, |b, q| {
            b.iter(|| planner.plan(q).expect("probes always plan"))
        });

        // What planning fronts: a full compile + eval.
        let engine = AutomataEngine::new();
        group.bench_with_input(BenchmarkId::new("compile_eval", calc.name()), &q, |b, q| {
            b.iter(|| engine.eval(q, &db).expect("probes evaluate"))
        });

        // Routed end-to-end, for reference: plan + execute.
        group.bench_with_input(
            BenchmarkId::new("plan_and_execute", calc.name()),
            &q,
            |b, q| {
                b.iter(|| {
                    planner
                        .plan(q)
                        .expect("probes always plan")
                        .execute(&db)
                        .expect("probes evaluate")
                })
            },
        );
    }
    group.finish();

    // Headline number for the CI artifact and gate: planning time as a
    // fraction of compile+eval time, per calculus. Plan and compile are
    // measured in interleaved rounds and summarized by medians, so
    // machine drift (thermal, frequency scaling, a noisy CI neighbour)
    // hits both sides equally instead of skewing the single-shot ratio.
    let rounds = 5usize;
    let iters = 40u32;
    let mut worst = 0.0f64;
    let mut json_rows: Vec<String> = Vec::new();
    for calc in Calculus::all() {
        let q = probe(calc);
        let engine = AutomataEngine::new();

        let mut plan_rounds = Vec::with_capacity(rounds);
        let mut compile_rounds = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                planner.plan(&q).expect("probes always plan");
            }
            plan_rounds.push(t0.elapsed());

            let t1 = std::time::Instant::now();
            for _ in 0..iters {
                engine.eval(&q, &db).expect("probes evaluate");
            }
            compile_rounds.push(t1.elapsed());
        }
        plan_rounds.sort();
        compile_rounds.sort();
        let plan = plan_rounds[rounds / 2];
        let compile = compile_rounds[rounds / 2];

        let pct = 100.0 * plan.as_secs_f64() / compile.as_secs_f64().max(1e-12);
        worst = worst.max(pct);
        println!(
            "plan overhead {:>8}: plan {:?} vs compile+eval {:?} — {:.2}%",
            calc.name(),
            plan,
            compile,
            pct,
        );
        json_rows.push(format!(
            "\"{}\":{{\"plan_round_secs\":{:.6},\"compile_eval_round_secs\":{:.6},\"overhead_percent\":{:.3}}}",
            calc.name(),
            plan.as_secs_f64(),
            compile.as_secs_f64(),
            pct,
        ));
    }
    println!("plan overhead worst case: {worst:.2}% (budget 5%)");
    // Since PR 6 the passes are planlint-gated, so "plan" time here
    // includes one verify + abstract-interpretation run per pass stage;
    // the 5% budget therefore bounds planning *and* verification.
    strcalc_bench::record_bench_json(
        "plan_overhead",
        &format!(
            "{{\"rounds\":{rounds},\"iters_per_round\":{iters},\"budget_percent\":5.0,\"worst_percent\":{:.3},\"per_calculus\":{{{}}}}}",
            worst,
            json_rows.join(","),
        ),
    );
    assert!(
        worst < 5.0,
        "planning must stay under 5% of compile time, measured {worst:.2}%"
    );
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
