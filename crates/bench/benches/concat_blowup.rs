//! E3 — Proposition 1: `RC_concat` is computationally complete, so the
//! only general evaluation is bounded search over `Σ^{≤B}` — cost
//! `|Σ|^{B·(quantifier depth)}`. We chart that blow-up and contrast a
//! comparable tame query evaluated exactly by the automata engine in
//! (near-)constant time.

use criterion::{BenchmarkId, Criterion};
use strcalc_bench::{ab, s_query};
use strcalc_core::{AutomataEngine, ConcatEvaluator};
use strcalc_relational::Database;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("concat_blowup");
    let db = Database::new();
    let ww = strcalc_core::concat::ww_query();
    for bound in [2usize, 4, 6, 8] {
        let eval = ConcatEvaluator::new(ab(), bound);
        group.bench_with_input(
            BenchmarkId::new("ww_bounded_search", bound),
            &eval,
            |b, eval| b.iter(|| eval.eval(&ww, &["x".to_string()], &db).unwrap().len()),
        );
    }
    // The tame contrast: a membership query of similar flavor ("even
    // length strings of a's", regular) via the exact engine — flat cost.
    let engine = AutomataEngine::new();
    let mut dbu = Database::new();
    dbu.insert_unary_parsed(&ab(), "U", &["aa"]).unwrap();
    let q = s_query(&[], "existsA x. U(x)");
    group.bench_function("tame_contrast_rc_s", |b| {
        b.iter(|| engine.eval_bool(&q, &dbu).unwrap())
    });
    group.finish();
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
