//! E6 — Theorem 2 / Corollary 4: `RC(S_len)` quantification collapses to
//! length-restricted quantification, whose range is `|Σ|^maxlen` — the
//! data complexity sits in PH and the enumeration engine's cost is
//! genuinely exponential in the length of stored strings. The automata
//! engine fares better on these particular queries but pays in
//! determinization on the hard ones (see `three_col`).

use criterion::{BenchmarkId, Criterion};
use strcalc_bench::{ab, slen_query};
use strcalc_core::{AutomataEngine, EnumEngine};
use strcalc_workloads::Workload;

fn bench(c: &mut Criterion) {
    let engine = AutomataEngine::new();
    let baseline = EnumEngine::with_slack(0);
    // "Two distinct stored strings have equal length" — the simplest
    // genuinely length-aware sentence.
    let q = slen_query(
        &[],
        "existsA x. existsA y. (U(x) & U(y) & el(x, y) & !(x = y))",
    );
    // "Some string of the same length as a stored one ends in a" — the
    // quantifier ranges over Σ^{≤maxlen}: exponential for the baseline.
    let q_open = slen_query(
        &[],
        "existsL z. (last(z, 'a') & existsA x. (U(x) & el(z, x) & !(z = x)))",
    );

    let mut group = c.benchmark_group("slen_blowup");
    for max_len in [4usize, 6, 8, 10, 12] {
        let db = Workload::new(ab(), 13).unary_db(12, max_len);
        group.bench_with_input(BenchmarkId::new("automata_el", max_len), &db, |b, db| {
            b.iter(|| engine.eval_bool(&q, db).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("automata_lenquant", max_len),
            &db,
            |b, db| b.iter(|| engine.eval_bool(&q_open, db).unwrap()),
        );
        if max_len <= 8 {
            // The enumeration baseline walks Σ^{≤maxlen}: exponential.
            group.bench_with_input(BenchmarkId::new("enum_lenquant", max_len), &db, |b, db| {
                b.iter(|| baseline.eval_bool(&q_open, db).unwrap())
            });
        }
    }
    group.finish();
}

fn main() {
    let mut c = strcalc_bench::criterion_config();
    bench(&mut c);
    c.final_summary();
}
