//! Enumeration of `Σ^n` and `Σ^{≤n}`.
//!
//! These iterators drive the length-restricted quantifier semantics of
//! `RC(S_len)` (Theorem 2 of the paper) in the enumeration engine, and the
//! `↓` operator of `RA(S_len)`. They enumerate without materializing the
//! whole (exponential) set.

use crate::{Str, Sym};

/// Iterator over all strings of a fixed length `n` over a `k`-symbol
/// alphabet, in lexicographic order (odometer on symbol indices).
#[derive(Debug, Clone)]
pub struct StringsExactly {
    k: Sym,
    current: Option<Vec<Sym>>,
}

impl StringsExactly {
    pub(crate) fn new(k: Sym, n: usize) -> Self {
        assert!(k >= 1, "alphabet must be nonempty");
        StringsExactly {
            k,
            current: Some(vec![0; n]),
        }
    }
}

impl Iterator for StringsExactly {
    type Item = Str;

    fn next(&mut self) -> Option<Str> {
        let cur = self.current.as_mut()?;
        let item = Str::from_syms(cur.clone());
        // Odometer increment, most significant digit leftmost.
        let mut i = cur.len();
        loop {
            if i == 0 {
                self.current = None;
                break;
            }
            i -= 1;
            if cur[i] + 1 < self.k {
                cur[i] += 1;
                for d in cur[i + 1..].iter_mut() {
                    *d = 0;
                }
                break;
            }
        }
        Some(item)
    }
}

/// Iterator over all strings of length at most `n`, in shortlex order.
#[derive(Debug, Clone)]
pub struct StringsUpTo {
    k: Sym,
    n: usize,
    len: usize,
    inner: StringsExactly,
}

impl StringsUpTo {
    pub(crate) fn new(k: Sym, n: usize) -> Self {
        StringsUpTo {
            k,
            n,
            len: 0,
            inner: StringsExactly::new(k, 0),
        }
    }
}

impl Iterator for StringsUpTo {
    type Item = Str;

    fn next(&mut self) -> Option<Str> {
        loop {
            if let Some(s) = self.inner.next() {
                return Some(s);
            }
            if self.len >= self.n {
                return None;
            }
            self.len += 1;
            self.inner = StringsExactly::new(self.k, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Alphabet;

    #[test]
    fn exact_enumeration_is_complete_and_ordered() {
        let a = Alphabet::abc();
        let all: Vec<_> = a.strings_exactly(2).collect();
        assert_eq!(all.len(), 9);
        for w in all.windows(2) {
            assert!(w[0].lex_cmp(&w[1]).is_lt());
        }
    }

    #[test]
    fn zero_length() {
        let a = Alphabet::binary();
        let all: Vec<_> = a.strings_exactly(0).collect();
        assert_eq!(all.len(), 1);
        assert!(all[0].is_empty());
    }

    #[test]
    fn up_to_matches_count() {
        let a = Alphabet::abc();
        for n in 0..5 {
            assert_eq!(a.strings_up_to(n).count(), a.count_up_to(n));
        }
    }
}
