//! Finite alphabets and strings over them.
//!
//! This crate provides the *domain* of every structure in the paper
//! "String Operations in Query Languages" (Benedikt, Libkin, Schwentick,
//! Segoufin; PODS 2001): the set `Σ*` of finite strings over a finite,
//! linearly ordered alphabet `Σ`.
//!
//! Strings are stored as packed vectors of symbol *indices* ([`Sym`]) into
//! an [`Alphabet`]. All the primitive operations used by the paper's
//! structures live here:
//!
//! * prefix tests `x ⪯ y` / `x ≺ y` ([`Str::is_prefix_of`],
//!   [`Str::is_strict_prefix_of`]),
//! * last/first symbol predicates `L_a`, `F_a`-style construction
//!   ([`Str::last`], [`Str::append`], [`Str::prepend`]),
//! * longest common prefix `x ⊓ y` ([`Str::lcp`]),
//! * relative suffix `x − y` ([`Str::subtract`]),
//! * left trim `TRIM_a` ([`Str::trim_leading`]),
//! * lexicographic and length-lexicographic (shortlex) orders
//!   ([`Str::lex_cmp`], [`Str::shortlex_cmp`]),
//! * enumeration of `Σ^{≤n}` ([`Alphabet::strings_up_to`]) and prefix
//!   closures ([`prefix_closure`]).

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

pub mod iter;

pub use iter::{StringsExactly, StringsUpTo};

/// A symbol: an index into an [`Alphabet`].
///
/// Indices are also the linear order on the alphabet (used by the
/// lexicographic order `≤_lex` of Section 4 of the paper).
pub type Sym = u8;

/// Maximum number of symbols in an alphabet.
///
/// The synchronized-automata layer reserves one value (`0xFF`) as the
/// padding symbol `⊥`, and packs up to eight tracks of one byte each into a
/// `u64` convolution symbol, so alphabets are capped well below that.
pub const MAX_ALPHABET: usize = 64;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlphabetError {
    /// The alphabet was empty, too large, or contained duplicate characters.
    BadAlphabet(String),
    /// A character in a parsed string is not part of the alphabet.
    UnknownChar(char),
    /// A symbol index is out of range for the alphabet.
    SymOutOfRange(Sym),
}

impl fmt::Display for AlphabetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlphabetError::BadAlphabet(msg) => write!(f, "bad alphabet: {msg}"),
            AlphabetError::UnknownChar(c) => write!(f, "character {c:?} not in alphabet"),
            AlphabetError::SymOutOfRange(s) => write!(f, "symbol index {s} out of range"),
        }
    }
}

impl std::error::Error for AlphabetError {}

/// A finite, linearly ordered alphabet `Σ = {a_0 < a_1 < … < a_{k-1}}`.
///
/// The order of the characters passed to [`Alphabet::new`] *is* the linear
/// order used for `≤_lex`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Alphabet {
    chars: Vec<char>,
}

impl Alphabet {
    /// Builds an alphabet from a sequence of distinct characters.
    ///
    /// # Errors
    ///
    /// Fails if the sequence is empty, longer than [`MAX_ALPHABET`], or
    /// contains duplicates.
    pub fn new(chars: &str) -> Result<Self, AlphabetError> {
        let chars: Vec<char> = chars.chars().collect();
        if chars.is_empty() {
            return Err(AlphabetError::BadAlphabet("empty".into()));
        }
        if chars.len() > MAX_ALPHABET {
            return Err(AlphabetError::BadAlphabet(format!(
                "{} characters exceeds the maximum of {MAX_ALPHABET}",
                chars.len()
            )));
        }
        let distinct: BTreeSet<char> = chars.iter().copied().collect();
        if distinct.len() != chars.len() {
            return Err(AlphabetError::BadAlphabet("duplicate characters".into()));
        }
        Ok(Alphabet { chars })
    }

    /// The binary alphabet `{0 < 1}`, the paper's default.
    pub fn binary() -> Self {
        Alphabet::new("01").expect("binary alphabet is valid")
    }

    /// The alphabet `{a < b}`.
    pub fn ab() -> Self {
        Alphabet::new("ab").expect("ab alphabet is valid")
    }

    /// The alphabet `{a < b < c}`.
    pub fn abc() -> Self {
        Alphabet::new("abc").expect("abc alphabet is valid")
    }

    /// Lower-case ASCII letters `a..z`.
    pub fn lowercase() -> Self {
        Alphabet::new("abcdefghijklmnopqrstuvwxyz").expect("ascii alphabet is valid")
    }

    /// Number of symbols `|Σ|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.chars.len()
    }

    /// `true` iff the alphabet has exactly one symbol (the degenerate case
    /// where `S_len` collapses to `S`; see Section 3 of the paper).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false // constructors reject empty alphabets
    }

    /// All symbol indices in order.
    #[inline]
    pub fn syms(&self) -> impl Iterator<Item = Sym> + '_ {
        (0..self.chars.len() as u8).map(|s| s as Sym)
    }

    /// The character rendering of a symbol.
    pub fn char_of(&self, s: Sym) -> Result<char, AlphabetError> {
        self.chars
            .get(s as usize)
            .copied()
            .ok_or(AlphabetError::SymOutOfRange(s))
    }

    /// The symbol index of a character.
    pub fn sym_of(&self, c: char) -> Result<Sym, AlphabetError> {
        self.chars
            .iter()
            .position(|&x| x == c)
            .map(|i| i as Sym)
            .ok_or(AlphabetError::UnknownChar(c))
    }

    /// Parses a string of characters into a [`Str`].
    pub fn parse(&self, text: &str) -> Result<Str, AlphabetError> {
        let syms: Result<Vec<Sym>, _> = text.chars().map(|c| self.sym_of(c)).collect();
        Ok(Str::from_syms(syms?))
    }

    /// Renders a [`Str`] using this alphabet's characters.
    pub fn render(&self, s: &Str) -> String {
        s.syms()
            .iter()
            .map(|&x| self.chars.get(x as usize).copied().unwrap_or('?'))
            .collect()
    }

    /// Iterator over all strings of length exactly `n`, in lexicographic
    /// order.
    pub fn strings_exactly(&self, n: usize) -> StringsExactly {
        StringsExactly::new(self.len() as Sym, n)
    }

    /// Iterator over all strings of length at most `n` (`Σ^{≤n}` in the
    /// paper's notation), in shortlex order.
    pub fn strings_up_to(&self, n: usize) -> StringsUpTo {
        StringsUpTo::new(self.len() as Sym, n)
    }

    /// A stable 64-bit fingerprint of the alphabet (the characters *and*
    /// their order, since the order is the linear order `≤_lex` builds
    /// on). Used as a cache-key component by `strcalc-core`'s compilation
    /// cache; stable across processes (FNV-1a over the code points, not
    /// the std `Hash`, whose output is unspecified).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |byte: u64| {
            h ^= byte;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        eat(self.chars.len() as u64);
        for &c in &self.chars {
            eat(c as u64);
        }
        // splitmix-style finalizer to spread the low FNV entropy.
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }

    /// `|Σ^{≤n}| = (|Σ|^{n+1} − 1)/(|Σ| − 1)` (or `n+1` for `|Σ| = 1`),
    /// saturating at `usize::MAX`.
    pub fn count_up_to(&self, n: usize) -> usize {
        let k = self.len();
        if k == 1 {
            return n + 1;
        }
        let mut total: usize = 0;
        let mut pow: usize = 1;
        for _ in 0..=n {
            total = total.saturating_add(pow);
            pow = pow.saturating_mul(k);
        }
        total
    }
}

/// A finite string over some alphabet, stored as packed symbol indices.
///
/// `Str` deliberately does not carry a reference to its [`Alphabet`]:
/// databases hold millions of strings and the alphabet is ambient. The
/// [`Ord`] implementation is **shortlex** (length first, then
/// lexicographic), which gives a canonical enumeration order; use
/// [`Str::lex_cmp`] for the pure lexicographic order `≤_lex` of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Str {
    syms: Vec<Sym>,
}

impl Str {
    /// The empty string `ε`.
    #[inline]
    pub fn epsilon() -> Self {
        Str { syms: Vec::new() }
    }

    /// Builds a string from raw symbol indices.
    #[inline]
    pub fn from_syms(syms: Vec<Sym>) -> Self {
        Str { syms }
    }

    /// The underlying symbol indices.
    #[inline]
    pub fn syms(&self) -> &[Sym] {
        &self.syms
    }

    /// Length `|x|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// `true` iff this is `ε`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// First symbol, if any.
    #[inline]
    pub fn first(&self) -> Option<Sym> {
        self.syms.first().copied()
    }

    /// Last symbol, if any. `L_a(x)` holds iff `x.last() == Some(a)`.
    #[inline]
    pub fn last(&self) -> Option<Sym> {
        self.syms.last().copied()
    }

    /// `l_a`: returns `x · a` (append `a` as the last symbol).
    pub fn append(&self, a: Sym) -> Str {
        let mut syms = Vec::with_capacity(self.syms.len() + 1);
        syms.extend_from_slice(&self.syms);
        syms.push(a);
        Str { syms }
    }

    /// `f_a`: returns `a · x` (prepend `a` as the first symbol).
    pub fn prepend(&self, a: Sym) -> Str {
        let mut syms = Vec::with_capacity(self.syms.len() + 1);
        syms.push(a);
        syms.extend_from_slice(&self.syms);
        Str { syms }
    }

    /// Concatenation `x · y`.
    ///
    /// Available as a *domain operation* (it is needed to build databases
    /// and workloads); note that admitting it as a *query operation* makes
    /// the calculus computationally complete (Proposition 1 of the paper).
    pub fn concat(&self, other: &Str) -> Str {
        let mut syms = Vec::with_capacity(self.syms.len() + other.syms.len());
        syms.extend_from_slice(&self.syms);
        syms.extend_from_slice(&other.syms);
        Str { syms }
    }

    /// Prefix test `x ⪯ y` (this ⪯ other), non-strict.
    pub fn is_prefix_of(&self, other: &Str) -> bool {
        self.syms.len() <= other.syms.len() && other.syms[..self.syms.len()] == self.syms[..]
    }

    /// Strict prefix test `x ≺ y`.
    pub fn is_strict_prefix_of(&self, other: &Str) -> bool {
        self.syms.len() < other.syms.len() && self.is_prefix_of(other)
    }

    /// `x < y` in the paper's "extension by exactly one symbol" sense:
    /// `y = x · a` for some `a`.
    pub fn extends_by_one(&self, other: &Str) -> bool {
        other.syms.len() == self.syms.len() + 1 && self.is_prefix_of(other)
    }

    /// Longest common prefix `x ⊓ y`.
    pub fn lcp(&self, other: &Str) -> Str {
        let n = self
            .syms
            .iter()
            .zip(other.syms.iter())
            .take_while(|(a, b)| a == b)
            .count();
        Str {
            syms: self.syms[..n].to_vec(),
        }
    }

    /// The paper's relative suffix `x − y`: if `x = y · z` then `z`,
    /// otherwise `ε`.
    pub fn subtract(&self, y: &Str) -> Str {
        if y.is_prefix_of(self) {
            Str {
                syms: self.syms[y.syms.len()..].to_vec(),
            }
        } else {
            Str::epsilon()
        }
    }

    /// `TRIM_a` of Section 7: if `x = a · x'` returns `x'`, else `ε`.
    pub fn trim_leading(&self, a: Sym) -> Str {
        if self.first() == Some(a) {
            Str {
                syms: self.syms[1..].to_vec(),
            }
        } else {
            Str::epsilon()
        }
    }

    /// Inserts `a` right after the prefix `p` of `x` — the operation the
    /// paper's Conclusion proposes as further research ("inserting
    /// characters at arbitrary position in a string x, specified by a
    /// prefix of x"). Returns `None` when `p` is not a prefix of `x`.
    pub fn insert_after(&self, p: &Str, a: Sym) -> Option<Str> {
        if !p.is_prefix_of(self) {
            return None;
        }
        let mut syms = Vec::with_capacity(self.syms.len() + 1);
        syms.extend_from_slice(&self.syms[..p.len()]);
        syms.push(a);
        syms.extend_from_slice(&self.syms[p.len()..]);
        Some(Str { syms })
    }

    /// Removes all *trailing* occurrences of `a` (SQL's `TRIM TRAILING`,
    /// which Section 4 notes is expressible over `S`).
    pub fn trim_trailing_all(&self, a: Sym) -> Str {
        let mut n = self.syms.len();
        while n > 0 && self.syms[n - 1] == a {
            n -= 1;
        }
        Str {
            syms: self.syms[..n].to_vec(),
        }
    }

    /// The prefix of length `n` (whole string if `n ≥ |x|`).
    pub fn prefix(&self, n: usize) -> Str {
        let n = n.min(self.syms.len());
        Str {
            syms: self.syms[..n].to_vec(),
        }
    }

    /// All prefixes of `x`, from `ε` to `x` itself (`|x| + 1` strings).
    pub fn prefixes(&self) -> impl Iterator<Item = Str> + '_ {
        (0..=self.syms.len()).map(move |n| self.prefix(n))
    }

    /// Pure lexicographic comparison `≤_lex` induced by the symbol order.
    ///
    /// Note `x ⪯ y` implies `x ≤_lex y`, matching the definability of
    /// `≤_lex` over `S` (Section 4, formula (2) of the paper).
    pub fn lex_cmp(&self, other: &Str) -> Ordering {
        self.syms.cmp(&other.syms)
    }

    /// Shortlex (length-lexicographic) comparison: shorter strings first,
    /// ties broken lexicographically. This is the [`Ord`] order.
    pub fn shortlex_cmp(&self, other: &Str) -> Ordering {
        self.syms
            .len()
            .cmp(&other.syms.len())
            .then_with(|| self.syms.cmp(&other.syms))
    }

    /// Equal-length predicate `el(x, y)`, i.e. `|x| = |y|`.
    #[inline]
    pub fn el(&self, other: &Str) -> bool {
        self.syms.len() == other.syms.len()
    }
}

impl Ord for Str {
    fn cmp(&self, other: &Self) -> Ordering {
        self.shortlex_cmp(other)
    }
}

impl PartialOrd for Str {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Str {
    /// Renders symbol *indices* (`ε` for the empty string). For a
    /// character rendering use [`Alphabet::render`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.syms.is_empty() {
            return write!(f, "ε");
        }
        for s in &self.syms {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// The prefix closure `prefix(C) = { s : s ⪯ s', s' ∈ C }` of a finite set.
pub fn prefix_closure<'a, I: IntoIterator<Item = &'a Str>>(set: I) -> BTreeSet<Str> {
    let mut out = BTreeSet::new();
    for s in set {
        for p in s.prefixes() {
            out.insert(p);
        }
    }
    out
}

/// The length-down closure `↓C = { s : |s| ≤ |s'| for some s' ∈ C }`
/// materialized over an explicit alphabet.
///
/// **Warning:** this has `|Σ|^{max length}` elements; it is the expensive
/// `↓` operation of `RA(S_len)` (Section 6.2 of the paper notes it is
/// unavoidable). Intended for small instances and for benchmarks that
/// demonstrate exactly this blow-up.
pub fn down_closure<'a, I: IntoIterator<Item = &'a Str>>(
    alphabet: &Alphabet,
    set: I,
) -> BTreeSet<Str> {
    let max_len = set.into_iter().map(Str::len).max().unwrap_or(0);
    alphabet.strings_up_to(max_len).collect()
}

/// `d(s, C) = |s| − |s ⊓ C|` where `s ⊓ C` is the longest among
/// `s ⊓ c, c ∈ C` (Section 6.1). For empty `C` this is `|s|`.
pub fn distance_to_set<'a, I: IntoIterator<Item = &'a Str>>(s: &Str, set: I) -> usize {
    let best = set.into_iter().map(|c| s.lcp(c).len()).max().unwrap_or(0);
    s.len() - best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    fn s(t: &str) -> Str {
        ab().parse(t).unwrap()
    }

    #[test]
    fn alphabet_construction() {
        assert!(Alphabet::new("").is_err());
        assert!(Alphabet::new("aa").is_err());
        assert_eq!(Alphabet::binary().len(), 2);
        assert_eq!(Alphabet::lowercase().len(), 26);
    }

    #[test]
    fn alphabet_round_trip() {
        let a = Alphabet::abc();
        let x = a.parse("cab").unwrap();
        assert_eq!(a.render(&x), "cab");
        assert_eq!(x.syms(), &[2, 0, 1]);
        assert!(a.parse("xyz").is_err());
    }

    #[test]
    fn prefix_relations() {
        assert!(s("").is_prefix_of(&s("ab")));
        assert!(s("a").is_prefix_of(&s("ab")));
        assert!(s("ab").is_prefix_of(&s("ab")));
        assert!(!s("ab").is_strict_prefix_of(&s("ab")));
        assert!(s("a").is_strict_prefix_of(&s("ab")));
        assert!(!s("b").is_prefix_of(&s("ab")));
        assert!(s("a").extends_by_one(&s("ab")));
        assert!(!s("a").extends_by_one(&s("abb")));
    }

    #[test]
    fn lcp_and_subtract() {
        assert_eq!(s("abab").lcp(&s("abba")), s("ab"));
        assert_eq!(s("abab").lcp(&s("ba")), s(""));
        // x − y: relative suffix of y in x
        assert_eq!(s("abab").subtract(&s("ab")), s("ab"));
        assert_eq!(s("abab").subtract(&s("ba")), s(""));
        assert_eq!(s("ab").subtract(&s("")), s("ab"));
        assert_eq!(s("").subtract(&s("")), s(""));
    }

    #[test]
    fn append_prepend_trim() {
        assert_eq!(s("ab").append(0), s("aba"));
        assert_eq!(s("ab").prepend(1), s("bab"));
        assert_eq!(s("aab").trim_leading(0), s("ab"));
        assert_eq!(s("bab").trim_leading(0), s(""));
        assert_eq!(s("").trim_leading(0), s(""));
        assert_eq!(s("abbb").trim_trailing_all(1), s("a"));
        assert_eq!(s("bbb").trim_trailing_all(1), s(""));
    }

    #[test]
    fn orders() {
        use Ordering::*;
        // lexicographic: prefix precedes extension; 'a' < 'b'
        assert_eq!(s("a").lex_cmp(&s("ab")), Less);
        assert_eq!(s("ab").lex_cmp(&s("b")), Less);
        assert_eq!(s("b").lex_cmp(&s("ab")), Greater);
        // shortlex: length dominates
        assert_eq!(s("b").shortlex_cmp(&s("ab")), Less);
        assert_eq!(s("ab").shortlex_cmp(&s("ab")), Equal);
    }

    #[test]
    fn closures() {
        let set = [s("ab"), s("b")];
        let pc = prefix_closure(set.iter());
        let expect: BTreeSet<Str> = [s(""), s("a"), s("ab"), s("b")].into_iter().collect();
        assert_eq!(pc, expect);

        let dc = down_closure(&ab(), set.iter());
        assert_eq!(dc.len(), 7); // ε, a, b, aa, ab, ba, bb
    }

    #[test]
    fn distances() {
        let c = [s("ab"), s("ba")];
        assert_eq!(distance_to_set(&s("abbb"), c.iter()), 2);
        assert_eq!(distance_to_set(&s("ab"), c.iter()), 0);
        assert_eq!(distance_to_set(&s("bb"), c.iter()), 1);
        assert_eq!(distance_to_set(&s("aaa"), [].iter()), 3);
    }

    #[test]
    fn enumeration_counts() {
        let a = ab();
        assert_eq!(a.strings_exactly(3).count(), 8);
        assert_eq!(a.strings_up_to(3).count(), 15);
        assert_eq!(a.count_up_to(3), 15);
        let one = Alphabet::new("a").unwrap();
        assert_eq!(one.count_up_to(5), 6);
        assert_eq!(one.strings_up_to(5).count(), 6);
    }

    #[test]
    fn enumeration_order_is_shortlex() {
        let a = ab();
        let all: Vec<Str> = a.strings_up_to(2).collect();
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(all, sorted);
        assert_eq!(all[0], s(""));
        assert_eq!(all[1], s("a"));
        assert_eq!(all[2], s("b"));
        assert_eq!(all[3], s("aa"));
    }

    #[test]
    fn fingerprints_distinguish_alphabets_and_orders() {
        assert_eq!(Alphabet::ab().fingerprint(), Alphabet::ab().fingerprint());
        assert_ne!(Alphabet::ab().fingerprint(), Alphabet::abc().fingerprint());
        // Character order participates: {a<b} and {b<a} are different
        // linear orders, hence different structures.
        let ba = Alphabet::new("ba").unwrap();
        assert_ne!(Alphabet::ab().fingerprint(), ba.fingerprint());
    }

    #[test]
    fn el_predicate() {
        assert!(s("ab").el(&s("ba")));
        assert!(!s("ab").el(&s("b")));
        assert!(s("").el(&s("")));
    }
}
