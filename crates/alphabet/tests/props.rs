//! Property-based tests for the string primitives: the algebraic laws
//! the calculi silently rely on.

use proptest::prelude::*;
use strcalc_alphabet::{Alphabet, Str};

fn arb_str(max_len: usize) -> impl Strategy<Value = Str> {
    prop::collection::vec(0u8..3, 0..=max_len).prop_map(Str::from_syms)
}

proptest! {
    #[test]
    fn lcp_is_common_prefix_and_longest(x in arb_str(12), y in arb_str(12)) {
        let l = x.lcp(&y);
        prop_assert!(l.is_prefix_of(&x));
        prop_assert!(l.is_prefix_of(&y));
        // Longest: extending by the next symbol of x breaks commonality.
        if l.len() < x.len() && l.len() < y.len() {
            prop_assert_ne!(x.syms()[l.len()], y.syms()[l.len()]);
        }
        // Symmetric.
        prop_assert_eq!(l, y.lcp(&x));
    }

    #[test]
    fn subtract_inverts_concat(x in arb_str(8), y in arb_str(8)) {
        // (x·y) − x = y  (paper: x − y is the relative suffix).
        let xy = x.concat(&y);
        prop_assert_eq!(xy.subtract(&x), y);
        // And x ⪯ x·y always.
        prop_assert!(x.is_prefix_of(&xy));
    }

    #[test]
    fn subtract_defaults_to_epsilon(x in arb_str(8), y in arb_str(8)) {
        if !y.is_prefix_of(&x) {
            prop_assert!(x.subtract(&y).is_empty());
        }
    }

    #[test]
    fn prefix_is_a_partial_order(x in arb_str(8), y in arb_str(8), z in arb_str(8)) {
        prop_assert!(x.is_prefix_of(&x));
        if x.is_prefix_of(&y) && y.is_prefix_of(&x) {
            prop_assert_eq!(&x, &y);
        }
        if x.is_prefix_of(&y) && y.is_prefix_of(&z) {
            prop_assert!(x.is_prefix_of(&z));
        }
    }

    #[test]
    fn prefix_implies_lex(x in arb_str(8), y in arb_str(8)) {
        // Section 4: x ⪯ y ⇒ x ≤_lex y.
        if x.is_prefix_of(&y) {
            prop_assert!(x.lex_cmp(&y) != std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn append_prepend_shapes(x in arb_str(8), a in 0u8..3) {
        let ap = x.append(a);
        prop_assert_eq!(ap.len(), x.len() + 1);
        prop_assert_eq!(ap.last(), Some(a));
        prop_assert!(x.extends_by_one(&ap));

        let pp = x.prepend(a);
        prop_assert_eq!(pp.len(), x.len() + 1);
        prop_assert_eq!(pp.first(), Some(a));
        // TRIM_a inverts prepend.
        prop_assert_eq!(pp.trim_leading(a), x);
    }

    #[test]
    fn trim_leading_on_miss_is_epsilon(x in arb_str(8), a in 0u8..3) {
        if x.first() != Some(a) {
            prop_assert!(x.trim_leading(a).is_empty());
        }
    }

    #[test]
    fn prefixes_count_and_membership(x in arb_str(10)) {
        let ps: Vec<Str> = x.prefixes().collect();
        prop_assert_eq!(ps.len(), x.len() + 1);
        for p in &ps {
            prop_assert!(p.is_prefix_of(&x));
        }
        prop_assert_eq!(ps.first().cloned(), Some(Str::epsilon()));
        prop_assert_eq!(ps.last().cloned(), Some(x));
    }

    #[test]
    fn shortlex_orders_by_length_first(x in arb_str(8), y in arb_str(8)) {
        if x.len() < y.len() {
            prop_assert_eq!(x.shortlex_cmp(&y), std::cmp::Ordering::Less);
        }
        if x.len() == y.len() {
            prop_assert_eq!(x.shortlex_cmp(&y), x.lex_cmp(&y));
        }
    }

    #[test]
    fn distance_to_set_bounds(x in arb_str(8), c in prop::collection::vec(arb_str(6), 0..4)) {
        let d = strcalc_alphabet::distance_to_set(&x, c.iter());
        prop_assert!(d <= x.len());
        if c.iter().any(|w| x.is_prefix_of(w) || x == *w) {
            prop_assert_eq!(d, 0);
        }
    }
}

#[test]
fn enumeration_agrees_with_counting() {
    let a = Alphabet::abc();
    for n in 0..5 {
        assert_eq!(a.strings_up_to(n).count(), a.count_up_to(n));
        assert_eq!(a.strings_exactly(n).count(), 3usize.pow(n as u32));
    }
}
