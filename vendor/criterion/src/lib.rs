//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the criterion 0.5 API its benches use: [`Criterion`]
//! with `sample_size` / `measurement_time` / `warm_up_time` /
//! `configure_from_args`, `bench_function`, [`BenchmarkGroup`] with
//! `throughput` / `bench_with_input` / `finish`, [`BenchmarkId`], and
//! [`Bencher::iter`].
//!
//! Measurement is honest but simple: each benchmark warms up for the
//! configured duration, then times `sample_size` batches (stopping early
//! at the measurement-time budget) and reports min / median / max to
//! stdout. There are no statistical comparisons with saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            filter: None,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Reads a substring filter from the command line (the first
    /// non-flag argument), mirroring `cargo bench -- <filter>`.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    fn enabled(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one(&self, id: &str, mut routine: impl FnMut(&mut Bencher)) {
        if !self.enabled(id) {
            return;
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        routine(&mut b);
        b.report(id);
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().render();
        self.run_one(&id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Prints a closing line (criterion's summary reports are not
    /// reproduced).
    pub fn final_summary(&self) {
        println!("benchmarks complete");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; throughput rates are not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().render());
        self.criterion.run_one(&full, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().render());
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Throughput declarations (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: warms up, then records up to `sample_size`
    /// single-call samples within the measurement-time budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warm_end = Instant::now() + self.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_end {
                break;
            }
        }
        self.samples.clear();
        let budget_end = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if Instant::now() >= budget_end {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id}: no samples recorded");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        println!(
            "{id}: median {median:?} (min {:?}, max {:?}, {} samples)",
            sorted[0],
            sorted[sorted.len() - 1],
            sorted.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut c = quick();
        let mut runs = 0usize;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
        c.final_summary();
    }

    #[test]
    fn groups_and_ids() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &n| b.iter(|| n * 2));
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert_eq!(BenchmarkId::new("f", 7).render(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(9).render(), "9");
    }
}
