//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest 1.x API its property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`;
//! * [`strategy::Just`], [`prop_oneof!`], tuple and integer-range
//!   strategies, and [`collection::vec`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Cases are generated from a deterministic per-test seed (hash of the
//! test name), so failures are reproducible run-to-run. There is **no
//! shrinking**: a failing case panics with the ordinary assertion
//! message. That trade-off keeps the stand-in small while preserving the
//! tests' power to find counterexamples.

pub mod test_runner {
    //! Test configuration and the deterministic case generator.

    /// Configuration accepted by [`crate::proptest!`]'s
    /// `#![proptest_config(...)]` header.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A deterministic generator for the named test.
        pub fn from_name(name: &str) -> TestRng {
            // FNV-1a over the name gives a stable, spread-out seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "TestRng::below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use std::sync::Arc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy: 'static {
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O + 'static,
        {
            Map { inner: self, f }
        }

        /// Recursive strategies: `self` generates leaves, `recurse` wraps
        /// an inner strategy into the next level. `depth` bounds nesting;
        /// the size hints of real proptest are accepted and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..depth {
                // Mix leaves back in at every level so generated trees
                // have varied depth rather than always bottoming out.
                cur = Union::new(vec![base.clone(), recurse(cur).boxed()]).boxed();
            }
            cur
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + 'static,
        O: 'static,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternative strategies (used by
    /// [`crate::prop_oneof!`] and `prop_recursive`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "Union of zero strategies");
            Union { options }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as u128 + v) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as u128 + v) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors proptest's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a boolean property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $( #[test] fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strategy),
                            &mut __rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 0u8..4, v in prop::collection::vec(0usize..10, 0..5)) {
            prop_assert!(x < 4);
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_and_map(n in prop_oneof![Just(1usize), (2usize..5).prop_map(|v| v * 10)]) {
            prop_assert!(n == 1 || (20..50).contains(&n));
        }
    }

    proptest! {
        #[test]
        fn recursive_strategies_terminate(
            depth in Just(()).prop_recursive(3, 8, 2, |inner| {
                inner.prop_map(|()| ())
            })
        ) {
            prop_assert_eq!(depth, ());
        }
    }
}
