//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the *subset* of the `rand 0.8` API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, and [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — deterministic for a given seed, which is
//! all the workloads layer relies on (same seed ⇒ same database). The
//! streams differ from upstream `rand`; nothing in the workspace depends
//! on the exact values, only on seed-determinism.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps a random word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    //! Concrete generators.

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod distributions {
    //! Range sampling (subset of `rand::distributions`).

    use super::RngCore;

    /// Types usable as the argument of [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_uint_range {
        ($($t:ty),* $(,)?) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as u128) - (self.start as u128);
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as u128 + v) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as u128) - (lo as u128) + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as u128 + v) as $t
                }
            }
        )*};
    }

    impl_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range {
        ($($t:ty),* $(,)?) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize);

    impl SampleRange<f64> for core::ops::Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "gen_range: empty range");
            self.start + super::unit_f64(rng.next_u64()) * (self.end - self.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u8> = (0..32).map(|_| a.gen_range(0u8..5)).collect();
        let ys: Vec<u8> = (0..32).map(|_| b.gen_range(0u8..5)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = r.gen_range(0u8..=4);
            assert!(w <= 4);
            let f = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
