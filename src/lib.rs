//! # strcalc — String Operations in Query Languages
//!
//! A Rust implementation of the string-extended relational calculi of
//! Benedikt, Libkin, Schwentick & Segoufin, *String Operations in Query
//! Languages* (PODS 2001): `RC(S)`, `RC(S_left)`, `RC(S_reg)`,
//! `RC(S_len)`, their safe fragments and relational algebras, exact
//! evaluation via automatic-structure (synchronized-automata) techniques,
//! decidable state-safety, conjunctive-query safety, and a mini-SQL
//! front-end.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`alphabet`] — `Σ`, `Σ*`, string primitives;
//! * [`automata`] — regexes, NFA/DFA, star-free tests, LIKE/SIMILAR;
//! * [`synchro`] — multi-track synchronized automata (the exact engine's
//!   substrate);
//! * [`logic`] — first-order formulas over the string signatures;
//! * [`analyze`] — database-free static analysis with `SA0xx`
//!   diagnostics (signature, safe-range, scope hygiene, cost);
//! * [`relational`] — databases and the extended relational algebras;
//! * [`core`] — the calculi, engines, safety analysis, translations;
//! * [`verify`] — translation validation: rewrite/compile certificates
//!   with counterexample witnesses, and the verified-rewrite gate;
//! * [`sqlfront`] — the SQL-ish surface syntax;
//! * [`workloads`] — deterministic data/query generators.
//!
//! ## Quickstart
//!
//! ```
//! use strcalc::prelude::*;
//!
//! let sigma = Alphabet::ab();
//! let mut db = Database::new();
//! db.insert("R", vec![sigma.parse("ab").unwrap()]).unwrap();
//! db.insert("R", vec![sigma.parse("ba").unwrap()]).unwrap();
//!
//! // φ(x) = R(x) ∧ L_a(x)   — strings in R ending in 'a'
//! let phi = Formula::rel("R", vec![Term::var("x")])
//!     .and(Formula::last_sym(Term::var("x"), 0));
//! let q = Query::new(Calculus::S, sigma.clone(), vec!["x".into()], phi).unwrap();
//!
//! let engine = AutomataEngine::new();
//! let out = engine.eval(&q, &db).unwrap();
//! assert_eq!(out.expect_finite().len(), 1);
//! ```

pub use strcalc_alphabet as alphabet;
pub use strcalc_analyze as analyze;
pub use strcalc_automata as automata;
pub use strcalc_core as core;
pub use strcalc_logic as logic;
pub use strcalc_relational as relational;
pub use strcalc_sqlfront as sqlfront;
pub use strcalc_synchro as synchro;
pub use strcalc_verify as verify;
pub use strcalc_workloads as workloads;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use strcalc_alphabet::{Alphabet, Str, Sym};
    pub use strcalc_automata::{Dfa, Nfa, Regex};
    pub use strcalc_core::{AutomataEngine, Calculus, EnumEngine, EvalOutput, Query, StateSafety};
    pub use strcalc_logic::{Formula, Term};
    pub use strcalc_relational::{Database, Relation, Schema};
}
